(* Tests for the core REsPoNse framework: tables, always-on / on-demand /
   failover computation, the quasi-static evaluation, the REsPoNseTE
   controller, critical-path ranking and trace replay. *)

module G = Topo.Graph
module State = Topo.State
module Path = Topo.Path
module Matrix = Traffic.Matrix

let geant = Topo.Geant.make ()
let geant_power = Power.Model.cisco12000 geant

let all_pairs g =
  let nodes = G.traffic_nodes g in
  Array.to_list nodes
  |> List.concat_map (fun o ->
         Array.to_list nodes |> List.filter_map (fun d -> if o <> d then Some (o, d) else None))

let sp g o d = Option.get (Routing.Dijkstra.shortest_path g ~src:o ~dst:d ())

(* -------------------- Tables -------------------- *)

let test_tables_basics () =
  let g = Topo.Example.square_with_diagonal () in
  let e =
    {
      Response.Tables.origin = 0;
      dest = 2;
      always_on = sp g 0 2;
      on_demand = [];
      failover = None;
    }
  in
  let t = Response.Tables.make g [ e ] in
  Alcotest.(check int) "pairs" 1 (List.length (Response.Tables.pairs t));
  Alcotest.(check bool) "find" true (Response.Tables.find t 0 2 <> None);
  Alcotest.(check bool) "absent" true (Response.Tables.find t 2 0 = None);
  Alcotest.(check int) "n tables" 1 (Response.Tables.n_tables t)

let test_tables_reject_bad_path () =
  let g = Topo.Example.square_with_diagonal () in
  let bad =
    { Response.Tables.origin = 1; dest = 3; always_on = sp g 0 2; on_demand = []; failover = None }
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Response.Tables.make g [ bad ]);
       false
     with Invalid_argument _ -> true)

let test_tables_states () =
  let g = Topo.Example.square_with_diagonal () in
  let diag_path = sp g 0 2 in
  let detour = Option.get (Routing.Disjoint.max_disjoint g ~protect:[ diag_path ] ~src:0 ~dst:2 ()) in
  let e =
    { Response.Tables.origin = 0; dest = 2; always_on = diag_path; on_demand = [ detour ]; failover = None }
  in
  let t = Response.Tables.make g [ e ] in
  let ao = Response.Tables.always_on_state t in
  Alcotest.(check int) "always-on links" 1 (State.active_links ao);
  let full = Response.Tables.full_state t in
  Alcotest.(check int) "full links" 3 (State.active_links full);
  let l0 = Response.Tables.level_state t 0 in
  Alcotest.(check bool) "level 0 = always on" true (State.equal ao l0)

(* -------------------- Always-on -------------------- *)

let test_always_on_oblivious_connects_everything () =
  let pairs = all_pairs geant in
  let r = Response.Always_on.compute geant geant_power ~pairs () in
  Alcotest.(check int) "every pair routed" (List.length pairs)
    (Hashtbl.length r.Response.Always_on.paths);
  (* Minimal-power connectivity: close to a spanning tree (22 links for 23
     nodes; a couple extra are acceptable). *)
  let links = State.active_links r.Response.Always_on.state in
  Alcotest.(check bool) (Printf.sprintf "near-tree (%d links)" links) true (links <= 26);
  (* All paths live inside the always-on state. *)
  Hashtbl.iter
    (fun _ p ->
      Alcotest.(check bool) "path within state" true
        (Path.active geant r.Response.Always_on.state p))
    r.Response.Always_on.paths

let test_always_on_latency_bound () =
  let pairs = all_pairs geant in
  let beta = 0.25 in
  let r = Response.Always_on.compute ~latency_beta:beta geant geant_power ~pairs () in
  let bounds = Routing.Spf.delay_bound_table geant ~pairs ~beta in
  let violations = ref 0 in
  Hashtbl.iter
    (fun od p ->
      match Hashtbl.find_opt bounds od with
      | Some b when Path.latency geant p > b +. 1e-12 -> incr violations
      | _ -> ())
    r.Response.Always_on.paths;
  (* The repair uses k=8 candidate paths; allow a handful of stragglers. *)
  Alcotest.(check bool) (Printf.sprintf "%d violations" !violations) true (!violations <= 5)

let test_always_on_lat_uses_more_power () =
  let pairs = all_pairs geant in
  let plain = Response.Always_on.compute geant geant_power ~pairs () in
  let lat = Response.Always_on.compute ~latency_beta:0.25 geant geant_power ~pairs () in
  Alcotest.(check bool) "more elements with latency bound" true
    (State.active_links lat.Response.Always_on.state
    >= State.active_links plain.Response.Always_on.state)

(* -------------------- On-demand -------------------- *)

let test_on_demand_stress_avoids_hot_links () =
  let pairs = all_pairs geant in
  let ao = Response.Always_on.compute geant geant_power ~pairs () in
  let sf = Response.On_demand.stress_factors geant ao.Response.Always_on.paths in
  Alcotest.(check bool) "some stress" true (Array.exists (fun s -> s > 0.0) sf);
  let od = Response.On_demand.compute geant geant_power ~always_on:ao ~pairs (Response.On_demand.Stress 0.2) in
  (* On-demand paths exist and differ from always-on for a large share of
     pairs (that is the point of path diversity). *)
  let distinct = ref 0 and total = ref 0 in
  List.iter
    (fun od_pair ->
      match Hashtbl.find_opt od od_pair with
      | Some (p :: _) ->
          incr total;
          let ao_p = Hashtbl.find ao.Response.Always_on.paths od_pair in (* lint: allow hashtbl-find *)
          if not (Path.equal p ao_p) then incr distinct
      | _ -> ())
    pairs;
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d distinct" !distinct !total)
    true
    (!total > 0 && float_of_int !distinct > 0.25 *. float_of_int !total)

let test_on_demand_ospf_matches_spf () =
  let pairs = all_pairs geant in
  let ao = Response.Always_on.compute geant geant_power ~pairs () in
  let od = Response.On_demand.compute geant geant_power ~always_on:ao ~pairs Response.On_demand.Ospf in
  let spf = Routing.Spf.routes geant ~pairs () in
  List.iter
    (fun od_pair ->
      match (Hashtbl.find_opt od od_pair, Hashtbl.find_opt spf od_pair) with
      | Some [ p ], Some q -> Alcotest.(check bool) "same as spf" true (Path.equal p q)
      | Some [], Some q ->
          (* Deduplicated: the OSPF path coincides with the always-on path. *)
          let ao_p = Hashtbl.find ao.Response.Always_on.paths od_pair in (* lint: allow hashtbl-find *)
          Alcotest.(check bool) "dedup only when equal" true (Path.equal q ao_p)
      | _ -> Alcotest.fail "missing entry")
    pairs

let test_on_demand_solver_pins_always_on () =
  let pairs = all_pairs geant in
  let ao = Response.Always_on.compute geant geant_power ~pairs () in
  let peak = Traffic.Gravity.make geant ~total:(Eutil.Units.bps 40e9) () in
  let od =
    Response.On_demand.compute geant geant_power ~always_on:ao ~pairs
      (Response.On_demand.Solver peak)
  in
  (* At least some pairs receive a distinct on-demand path. *)
  let some = List.exists (fun p -> match Hashtbl.find_opt od p with Some (_ :: _) -> true | _ -> false) pairs in
  Alcotest.(check bool) "solver produced paths" true some

let test_on_demand_rounds_produce_distinct_tables () =
  let pairs = all_pairs geant in
  let ao = Response.Always_on.compute geant geant_power ~pairs () in
  let od =
    Response.On_demand.compute ~rounds:2 geant geant_power ~always_on:ao ~pairs
      (Response.On_demand.Stress 0.2)
  in
  let with_two =
    List.length (List.filter (fun p -> match Hashtbl.find_opt od p with Some l -> List.length l >= 2 | None -> false) pairs)
  in
  Alcotest.(check bool) (Printf.sprintf "%d pairs with 2 tables" with_two) true (with_two > 0);
  (* Lists never contain duplicates. *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt od p with
      | Some l ->
          Alcotest.(check int) "no dup" (List.length l)
            (List.length (List.sort_uniq Path.compare l))
      | None -> ())
    pairs

(* -------------------- Failover -------------------- *)

let test_failover_disjoint_when_possible () =
  let g = Topo.Example.square_with_diagonal () in
  let ao = sp g 0 2 in
  let protect = Hashtbl.create 1 in
  Hashtbl.replace protect (0, 2) [ ao ];
  let fo = Response.Failover.compute g ~protect ~pairs:[ (0, 2) ] in
  let f = Hashtbl.find fo (0, 2) in (* lint: allow hashtbl-find *)
  Alcotest.(check bool) "disjoint" false (Path.shares_link g f ao)

let test_vulnerable_pairs () =
  (* On a line, always-on and failover coincide: every pair is vulnerable. *)
  let g = Topo.Example.line 3 in
  let e =
    { Response.Tables.origin = 0; dest = 2; always_on = sp g 0 2; on_demand = []; failover = None }
  in
  let t = Response.Tables.make g [ e ] in
  Alcotest.(check (list (pair int int))) "vulnerable" [ (0, 2) ]
    (Response.Failover.vulnerable_pairs g t);
  (* With a disjoint failover in the square, no pair is vulnerable. *)
  let g2 = Topo.Example.square_with_diagonal () in
  let ao = sp g2 0 2 in
  let fo = Option.get (Routing.Disjoint.max_disjoint g2 ~protect:[ ao ] ~src:0 ~dst:2 ()) in
  let t2 =
    Response.Tables.make g2
      [ { Response.Tables.origin = 0; dest = 2; always_on = ao; on_demand = []; failover = Some fo } ]
  in
  Alcotest.(check (list (pair int int))) "protected" [] (Response.Failover.vulnerable_pairs g2 t2)

let test_node_vulnerable_pairs () =
  (* Theta graph: o-a-m-c-k and o-b-m-d-k are link-disjoint but both cross
     the transit node m — invisible to the link analysis, a node failure
     kills both. *)
  let b = G.Builder.create () in
  let n name = G.Builder.add_node b name in
  let o = n "o" and a = n "a" and bb = n "b" and m = n "m" and c = n "c" and d = n "d" and k = n "k" in
  let gig = Eutil.Units.to_float (Eutil.Units.gbps 1.0) in
  let link x y = ignore (G.Builder.add_link b ~capacity:gig ~latency:1e-3 x y) in
  link o a; link a m; link m c; link c k;
  link o bb; link bb m; link m d; link d k;
  let g = G.Builder.build b in
  let arc i j = Option.get (G.find_arc g i j) in
  let upper = Path.of_arcs g [ arc o a; arc a m; arc m c; arc c k ] in
  let lower = Path.of_arcs g [ arc o bb; arc bb m; arc m d; arc d k ] in
  let t =
    Response.Tables.make g
      [ { Response.Tables.origin = o; dest = k; always_on = upper; on_demand = []; failover = Some lower } ]
  in
  Alcotest.(check (list (pair int int))) "link-disjoint, so not link-vulnerable" []
    (Response.Failover.vulnerable_pairs g t);
  Alcotest.(check (list (pair int int))) "but the shared transit node is fatal" [ (o, k) ]
    (Response.Failover.node_vulnerable_pairs g t);
  (* The Fig. 3 set-up has node-disjoint interiors: no pair is exposed. *)
  let ex = Topo.Example.make ~include_b:false () in
  let g3 = ex.Topo.Example.graph in
  let arc3 i j = Option.get (G.find_arc g3 i j) in
  let mid o' =
    Path.of_arcs g3 [ arc3 o' ex.Topo.Example.e; arc3 ex.Topo.Example.e ex.Topo.Example.h; arc3 ex.Topo.Example.h ex.Topo.Example.k ]
  in
  let up =
    Path.of_arcs g3
      [ arc3 ex.Topo.Example.a ex.Topo.Example.d; arc3 ex.Topo.Example.d ex.Topo.Example.g; arc3 ex.Topo.Example.g ex.Topo.Example.k ]
  in
  let t3 =
    Response.Tables.make g3
      [
        {
          Response.Tables.origin = ex.Topo.Example.a;
          dest = ex.Topo.Example.k;
          always_on = mid ex.Topo.Example.a;
          on_demand = [ up ];
          failover = None;
        };
      ]
  in
  Alcotest.(check (list (pair int int))) "disjoint interiors survive a chassis loss" []
    (Response.Failover.node_vulnerable_pairs g3 t3)

(* -------------------- Framework -------------------- *)

let geant_tables =
  lazy
    (Response.Framework.precompute geant geant_power ~pairs:(all_pairs geant))

let test_precompute_structure () =
  let t = Lazy.force geant_tables in
  Alcotest.(check int) "all pairs present" (List.length (all_pairs geant))
    (List.length (Response.Tables.pairs t));
  let n = Response.Tables.n_tables t in
  Alcotest.(check bool) (Printf.sprintf "N = %d <= 3" n) true (n <= 3);
  Alcotest.(check bool) "N >= 2" true (n >= 2)

let tables_equal a b =
  let pa = Response.Tables.pairs a and pb = Response.Tables.pairs b in
  pa = pb
  && List.for_all
       (fun (o, d) ->
         match (Response.Tables.find a o d, Response.Tables.find b o d) with
         | Some ea, Some eb ->
             let la = Array.to_list (Response.Tables.paths ea) in
             let lb = Array.to_list (Response.Tables.paths eb) in
             List.length la = List.length lb && List.for_all2 Path.equal la lb
         | None, None -> true
         | _ -> false)
       pa

let test_precompute_cached_hits () =
  Response.Framework.cache_clear ();
  let g = Topo.Example.square_with_diagonal () in
  let power = Power.Model.cisco12000 g in
  let pairs = all_pairs g in
  let s0 = Response.Framework.cache_stats () in
  let t1 = Response.Framework.precompute_cached g power ~pairs in
  let t2 = Response.Framework.precompute_cached g power ~pairs in
  let s1 = Response.Framework.cache_stats () in
  Alcotest.(check bool) "second call returns the cached tables" true (t1 == t2);
  Alcotest.(check int) "one miss" 1 (s1.Eutil.Memo.misses - s0.Eutil.Memo.misses);
  Alcotest.(check int) "one hit" 1 (s1.Eutil.Memo.hits - s0.Eutil.Memo.hits);
  (* A structurally identical but physically distinct graph (and power
     model) digests to the same key, so it hits too. *)
  let g' = Topo.Example.square_with_diagonal () in
  let t3 = Response.Framework.precompute_cached g' (Power.Model.cisco12000 g') ~pairs in
  Alcotest.(check bool) "signature match hits across graph copies" true (t1 == t3);
  (* A different config misses. *)
  let config = { Response.Framework.default with n_paths = 4 } in
  let t4 = Response.Framework.precompute_cached ~config g power ~pairs in
  Alcotest.(check bool) "config change misses" true (t1 != t4)

let prop_precompute_cached_equals_uncached =
  QCheck.Test.make ~name:"precompute_cached equals precompute" ~count:8
    QCheck.(pair (int_range 2 4) (int_range 0 2))
    (fun (n_paths, drop) ->
      let g = Topo.Example.square_with_diagonal () in
      let power = Power.Model.cisco12000 g in
      let pairs = List.filteri (fun i _ -> i >= drop) (all_pairs g) in
      let config = { Response.Framework.default with n_paths } in
      let cached = Response.Framework.precompute_cached ~config g power ~pairs in
      let plain = Response.Framework.precompute ~config g power ~pairs in
      tables_equal cached plain)

let test_evaluate_energy_proportionality () =
  let t = Lazy.force geant_tables in
  let power_at total =
    (Response.Framework.evaluate t geant_power
       (Traffic.Gravity.make geant ~total:(Eutil.Units.bps total) ()))
      .Response.Framework.power_percent
  in
  let low = power_at 2e9 and mid = power_at 20e9 and high = power_at 60e9 in
  Alcotest.(check bool) (Printf.sprintf "monotone %.0f <= %.0f <= %.0f" low mid high) true
    (low <= mid +. 1e-6 && mid <= high +. 1e-6);
  (* With all 23 PoPs originating traffic every chassis stays powered, so
     the floor is set by link power only (~20 % of the GEANT total here);
     larger savings need unused PoPs (see the Figure 5 bench, which uses
     random origin-destination subsets as the paper does). *)
  Alcotest.(check bool) (Printf.sprintf "savings at low load (%.0f%%)" low) true (low < 85.0)

let test_evaluate_activates_levels () =
  let t = Lazy.force geant_tables in
  let low = Response.Framework.evaluate t geant_power (Traffic.Gravity.make geant ~total:(Eutil.Units.bps 2e9) ()) in
  Alcotest.(check int) "always-on only at low load" 0 low.Response.Framework.levels_activated;
  let high = Response.Framework.evaluate t geant_power (Traffic.Gravity.make geant ~total:(Eutil.Units.bps 80e9) ()) in
  Alcotest.(check bool) "on-demand at high load" true
    (high.Response.Framework.levels_activated >= 1)

let test_carried_fraction_always_on_about_half () =
  (* Section 4.1: always-on paths alone accommodate about 50 % of the volume
     the OSPF paths can carry. Accept a wide band: the claim is qualitative. *)
  let t = Lazy.force geant_tables in
  let base = Traffic.Gravity.make geant ~total:(Eutil.Units.bps 1e9) () in
  let ao_only = Response.Framework.carried_fraction t geant_power ~base ~max_level:0 in
  let all = Response.Framework.carried_fraction t geant_power ~base ~max_level:10 in
  Alcotest.(check bool) "all levels carry more" true (all > ao_only);
  let ratio = ao_only /. all in
  Alcotest.(check bool) (Printf.sprintf "always-on ratio %.2f in [0.2, 0.9]" ratio) true
    (ratio > 0.2 && ratio < 0.9)

(* -------------------- REsPoNseTE -------------------- *)

let fig3_tables () =
  (* Fig. 3/7 set-up without B: A and C send to K; E-H-K is always-on, the
     D-G / F-J paths are on-demand (= failover here). *)
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let a = ex.Topo.Example.a and c = ex.Topo.Example.c and k = ex.Topo.Example.k in
  let via_middle o =
    (* o - E - H - K *)
    let e = ex.Topo.Example.e and h = ex.Topo.Example.h in
    Path.of_arcs g
      [
        Option.get (G.find_arc g o e);
        Option.get (G.find_arc g e h);
        Option.get (G.find_arc g h k);
      ]
  in
  let upper =
    let d = ex.Topo.Example.d and gg = ex.Topo.Example.g in
    Path.of_arcs g
      [
        Option.get (G.find_arc g a d);
        Option.get (G.find_arc g d gg);
        Option.get (G.find_arc g gg k);
      ]
  in
  let lower =
    let f = ex.Topo.Example.f and j = ex.Topo.Example.j in
    Path.of_arcs g
      [
        Option.get (G.find_arc g c f);
        Option.get (G.find_arc g f j);
        Option.get (G.find_arc g j k);
      ]
  in
  let entries =
    [
      { Response.Tables.origin = a; dest = k; always_on = via_middle a; on_demand = [ upper ]; failover = None };
      { Response.Tables.origin = c; dest = k; always_on = via_middle c; on_demand = [ lower ]; failover = None };
    ]
  in
  (ex, Response.Tables.make g entries)

let test_te_initial_split_on_always_on () =
  let _, tables = fig3_tables () in
  let te = Response.Te.create tables Response.Te.default_config in
  List.iter
    (fun (o, d) ->
      let s = Response.Te.split te o d in
      Alcotest.(check (float 1e-9)) "all on always-on" 1.0 s.(0))
    (Response.Tables.pairs tables)

let test_te_overload_activates_on_demand () =
  let ex, tables = fig3_tables () in
  let te = Response.Te.create tables Response.Te.default_config in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  (* Report the always-on path fully utilised and the on-demand path idle. *)
  let ao_links =
    Path.links ex.Topo.Example.graph (Response.Tables.find tables a k |> Option.get).Response.Tables.always_on
  in
  let hot l = Array.exists (fun x -> x = l) ao_links in
  let actions =
    Response.Te.on_probe te ~origin:a ~dest:k ~now:1.0
      ~link_util:(fun l -> if hot l then 0.97 else 0.0)
      ~link_usable:(fun _ -> true)
  in
  Alcotest.(check bool) "acted" true (actions <> []);
  let s = Response.Te.split te a k in
  Alcotest.(check bool) "shifted to on-demand" true (s.(1) > 0.0)

let test_te_failure_moves_everything () =
  let ex, tables = fig3_tables () in
  let te = Response.Te.create tables Response.Te.default_config in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  let g = ex.Topo.Example.graph in
  let eh = (G.arc g (Option.get (G.find_arc g ex.Topo.Example.e ex.Topo.Example.h))).G.link in
  let actions =
    Response.Te.on_probe te ~origin:a ~dest:k ~now:1.0
      ~link_util:(fun _ -> 0.1)
      ~link_usable:(fun l -> l <> eh)
  in
  Alcotest.(check bool) "acted on failure" true (actions <> []);
  let s = Response.Te.split te a k in
  Alcotest.(check (float 1e-9)) "nothing on failed path" 0.0 s.(0);
  Alcotest.(check (float 1e-9)) "all on surviving path" 1.0 s.(1)

let test_te_consolidates_after_hysteresis () =
  let ex, tables = fig3_tables () in
  let cfg = { Response.Te.default_config with hysteresis = Eutil.Units.seconds 1.0 } in
  let te = Response.Te.create tables cfg in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  (* Force traffic to the on-demand path via a failure, then heal it. *)
  let g = ex.Topo.Example.graph in
  let eh = (G.arc g (Option.get (G.find_arc g ex.Topo.Example.e ex.Topo.Example.h))).G.link in
  ignore
    (Response.Te.on_probe te ~origin:a ~dest:k ~now:0.0 ~link_util:(fun _ -> 0.1)
       ~link_usable:(fun l -> l <> eh));
  (* Low utilisation, link healed: first probe starts the low streak... *)
  let probe now =
    Response.Te.on_probe te ~origin:a ~dest:k ~now ~link_util:(fun _ -> 0.05)
      ~link_usable:(fun _ -> true)
  in
  ignore (probe 1.0);
  Alcotest.(check bool) "not yet consolidated" true ((Response.Te.split te a k).(1) > 0.9);
  (* ...after the hysteresis expires, traffic steps back down. *)
  ignore (probe 2.1);
  ignore (probe 3.3);
  ignore (probe 4.5);
  let s = Response.Te.split te a k in
  Alcotest.(check bool) (Printf.sprintf "consolidated (%.2f on always-on)" s.(0)) true (s.(0) > 0.9)

let test_te_stable_under_constant_load () =
  (* A load between the two thresholds must produce no actions at all —
     the stability property. *)
  let ex, tables = fig3_tables () in
  let te = Response.Te.create tables Response.Te.default_config in
  let a = ex.Topo.Example.a and k = ex.Topo.Example.k in
  for i = 1 to 20 do
    let actions =
      Response.Te.on_probe te ~origin:a ~dest:k ~now:(float_of_int i)
        ~link_util:(fun _ -> 0.6)
        ~link_usable:(fun _ -> true)
    in
    Alcotest.(check bool) "no oscillation" true (actions = [])
  done


let test_always_on_epsilon_is_near_tree () =
  (* The literal epsilon variant minimises power with no capacity pressure:
     the active set is close to a spanning tree. *)
  let pairs = all_pairs geant in
  let r =
    Response.Always_on.compute ~mode:Response.Always_on.Epsilon geant geant_power ~pairs ()
  in
  let links = State.active_links r.Response.Always_on.state in
  Alcotest.(check bool) (Printf.sprintf "near-tree (%d links)" links) true (links <= 26)

let test_always_on_oblivious_has_more_capacity_than_epsilon () =
  let pairs = all_pairs geant in
  let tables_of mode =
    let config = { Response.Framework.default with always_on_mode = mode } in
    Response.Framework.precompute ~config geant geant_power ~pairs
  in
  let base = Traffic.Gravity.make geant ~pairs ~total:(Eutil.Units.bps 1e9) () in
  let carried mode =
    Response.Framework.carried_fraction (tables_of mode) geant_power ~base ~max_level:0
  in
  Alcotest.(check bool) "gravity prior carries more" true
    (carried Response.Always_on.Oblivious > carried Response.Always_on.Epsilon)

let test_on_demand_solver_fallback_diversity () =
  (* On the dual-homed PoP-access topology the peak solve reuses pinned
     always-on links; the stress fallback must still give most pairs a
     distinct on-demand path. *)
  let g = Topo.Pop_access.make () in
  let power = Power.Model.cisco12000 g in
  let metros = G.nodes_with_role g G.Metro in
  let pairs =
    List.concat_map
      (fun o -> List.filter_map (fun d -> if o <> d then Some (o, d) else None) metros)
      metros
    |> List.filteri (fun i _ -> i mod 3 = 0)
  in
  let ao = Response.Always_on.compute g power ~pairs () in
  let peak = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps 8e9) () in
  let od =
    Response.On_demand.compute g power ~always_on:ao ~pairs (Response.On_demand.Solver peak)
  in
  let with_alternative =
    List.length
      (List.filter
         (fun p -> match Hashtbl.find_opt od p with Some (_ :: _) -> true | _ -> false)
         pairs)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d pairs have an on-demand path" with_alternative (List.length pairs))
    true
    (float_of_int with_alternative >= 0.7 *. float_of_int (List.length pairs))

let test_framework_loads_consistent () =
  let t = Lazy.force geant_tables in
  let tm = Traffic.Gravity.make geant ~total:(Eutil.Units.bps 10e9) () in
  let loads = Response.Framework.loads t tm in
  Alcotest.(check int) "one load per arc" (G.arc_count geant) (Array.length loads);
  let carried = Array.fold_left ( +. ) 0.0 loads in
  (* Every flow is placed on some path of >= 1 hop, so the summed arc load is
     at least the demand total. *)
  Alcotest.(check bool) "loads cover demand" true (carried >= Matrix.total tm -. 1.0)

let test_te_force_split () =
  let _, tables = Fixtures.fig3_tables () in
  let te = Response.Te.create tables Response.Te.default_config in
  match Response.Tables.pairs tables with
  | (o, d) :: _ ->
      Response.Te.force_split te o d [| 1.0; 3.0 |];
      let s = Response.Te.split te o d in
      Alcotest.(check (float 1e-9)) "normalised low" 0.25 s.(0);
      Alcotest.(check (float 1e-9)) "normalised high" 0.75 s.(1);
      Alcotest.check_raises "arity" (Invalid_argument "Te.force_split: wrong arity") (fun () ->
          Response.Te.force_split te o d [| 1.0 |])
  | [] -> Alcotest.fail "no pairs"

let test_te_overload_picks_coolest () =
  (* Three paths: always-on hot, first on-demand warm, failover cold: the
     shift must go to the coldest eligible path. *)
  let g = Topo.Example.square_with_diagonal () in
  let p0 = sp g 0 2 in
  let p1 = Option.get (Routing.Disjoint.max_disjoint g ~protect:[ p0 ] ~src:0 ~dst:2 ()) in
  let p2 =
    Option.get (Routing.Disjoint.max_disjoint g ~protect:[ p0; p1 ] ~src:0 ~dst:2 ())
  in
  let t =
    Response.Tables.make g
      [ { Response.Tables.origin = 0; dest = 2; always_on = p0; on_demand = [ p1 ]; failover = Some p2 } ]
  in
  let te = Response.Te.create t Response.Te.default_config in
  let l0 = Array.to_list (Path.links g p0) in
  let l1 = Array.to_list (Path.links g p1) in
  let util l =
    if List.mem l l0 then 0.95 else if List.mem l l1 then 0.5 else 0.05
  in
  ignore
    (Response.Te.on_probe te ~origin:0 ~dest:2 ~now:1.0 ~link_util:util
       ~link_usable:(fun _ -> true));
  let s = Response.Te.split te 0 2 in
  Alcotest.(check bool) "went to the coldest" true (s.(2) > 0.0 && s.(1) = 0.0)

(* -------------------- Critical paths & replay -------------------- *)

let test_critical_paths_coverage () =
  let g = Topo.Example.square_with_diagonal () in
  let cp = Response.Critical_paths.create g in
  let direct = sp g 0 2 in
  let detour = Option.get (Routing.Disjoint.max_disjoint g ~protect:[ direct ] ~src:0 ~dst:2 ()) in
  let route p =
    let h = Hashtbl.create 1 in
    Hashtbl.replace h (0, 2) p;
    h
  in
  let tm v = Matrix.of_flows 4 [ (0, 2, v) ] in
  (* 90 units on the direct path, 10 on the detour. *)
  Response.Critical_paths.observe cp (route direct) (tm 90.0);
  Response.Critical_paths.observe cp (route detour) (tm 10.0);
  Alcotest.(check (float 1e-9)) "top-1 covers 90%" 90.0 (Response.Critical_paths.coverage cp ~top:1);
  Alcotest.(check (float 1e-9)) "top-2 covers all" 100.0 (Response.Critical_paths.coverage cp ~top:2);
  Alcotest.(check int) "distinct" 2 (Response.Critical_paths.distinct_paths cp);
  match Response.Critical_paths.paths_of cp 0 2 with
  | (p, v) :: _ ->
      Alcotest.(check bool) "heaviest first" true (Path.equal p direct);
      Alcotest.(check (float 1e-9)) "volume" 90.0 v
  | [] -> Alcotest.fail "empty ranking"

let test_replay_geant_day () =
  (* One synthetic day at 1-hour granularity: fast but representative. *)
  let trace =
    Traffic.Trace.subsample (Traffic.Synth.geant_like geant ~days:1 ()) ~every:4
  in
  let r = Response.Replay.run geant geant_power trace in
  Alcotest.(check int) "all intervals" (Traffic.Trace.length trace)
    (Array.length r.Response.Replay.intervals);
  (* Savings happen. *)
  Alcotest.(check bool) "mean power below full" true (Response.Replay.mean_power_percent r < 95.0);
  (* Dominance fractions sum to 1. *)
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 (Response.Replay.config_dominance r) in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 total;
  (* Recomputation rate buckets cover the replay. *)
  let rates = Response.Replay.recomputation_rate r ~bucket:3600.0 in
  Alcotest.(check int) "one bucket per hour" 24 (List.length rates);
  (* Coverage curve is monotone and reaches 100 with enough paths. *)
  let curve = Response.Critical_paths.coverage_curve r.Response.Replay.ranking ~max:6 in
  let values = List.map snd curve in
  Alcotest.(check bool) "monotone" true (List.sort Float.compare values = values);
  Alcotest.(check bool) "high coverage with few paths" true (List.nth values 2 > 80.0) (* lint: allow list-nth *)

let () =
  Alcotest.run "response"
    [
      ( "tables",
        [
          Alcotest.test_case "basics" `Quick test_tables_basics;
          Alcotest.test_case "reject bad path" `Quick test_tables_reject_bad_path;
          Alcotest.test_case "states" `Quick test_tables_states;
        ] );
      ( "always-on",
        [
          Alcotest.test_case "oblivious connectivity" `Quick test_always_on_oblivious_connects_everything;
          Alcotest.test_case "latency bound" `Quick test_always_on_latency_bound;
          Alcotest.test_case "lat uses more power" `Quick test_always_on_lat_uses_more_power;
          Alcotest.test_case "epsilon near-tree" `Quick test_always_on_epsilon_is_near_tree;
          Alcotest.test_case "oblivious capacity" `Quick test_always_on_oblivious_has_more_capacity_than_epsilon;
        ] );
      ( "on-demand",
        [
          Alcotest.test_case "stress avoids hot links" `Quick test_on_demand_stress_avoids_hot_links;
          Alcotest.test_case "ospf variant" `Quick test_on_demand_ospf_matches_spf;
          Alcotest.test_case "solver variant" `Slow test_on_demand_solver_pins_always_on;
          Alcotest.test_case "multiple rounds" `Quick test_on_demand_rounds_produce_distinct_tables;
          Alcotest.test_case "solver fallback diversity" `Quick test_on_demand_solver_fallback_diversity;
        ] );
      ( "failover",
        [
          Alcotest.test_case "disjoint" `Quick test_failover_disjoint_when_possible;
          Alcotest.test_case "vulnerable pairs" `Quick test_vulnerable_pairs;
          Alcotest.test_case "node-vulnerable pairs" `Quick test_node_vulnerable_pairs;
        ] );
      ( "framework",
        [
          Alcotest.test_case "precompute structure" `Quick test_precompute_structure;
          Alcotest.test_case "precompute_cached hits" `Quick test_precompute_cached_hits;
          QCheck_alcotest.to_alcotest prop_precompute_cached_equals_uncached;
          Alcotest.test_case "energy proportionality" `Quick test_evaluate_energy_proportionality;
          Alcotest.test_case "activates levels" `Quick test_evaluate_activates_levels;
          Alcotest.test_case "always-on carries ~half" `Quick test_carried_fraction_always_on_about_half;
          Alcotest.test_case "loads consistent" `Quick test_framework_loads_consistent;
        ] );
      ( "te",
        [
          Alcotest.test_case "initial split" `Quick test_te_initial_split_on_always_on;
          Alcotest.test_case "overload activates" `Quick test_te_overload_activates_on_demand;
          Alcotest.test_case "failure moves all" `Quick test_te_failure_moves_everything;
          Alcotest.test_case "consolidation" `Quick test_te_consolidates_after_hysteresis;
          Alcotest.test_case "stability" `Quick test_te_stable_under_constant_load;
          Alcotest.test_case "force split" `Quick test_te_force_split;
          Alcotest.test_case "overload picks coolest" `Quick test_te_overload_picks_coolest;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "coverage" `Quick test_critical_paths_coverage;
          Alcotest.test_case "replay one day" `Slow test_replay_geant_day;
        ] );
    ]
