(* Tests for the static-analysis layer (lib/check): every Srclint rule fires
   on a seeded-violation fixture, the suppression pragmas work, the cleaner
   does not report code hidden in strings/comments, and each Invariant
   validator flags a forged bad value while accepting the healthy one. *)

module F = Check.Finding
module Lint = Check.Srclint
module Inv = Check.Invariant
module Graph = Topo.Graph
module Path = Topo.Path

let rule_ids fs = List.sort_uniq String.compare (List.map (fun f -> f.F.rule) fs)

let lint src = Lint.lint_string ~file:"fixture.ml" src

let fires rule src =
  Alcotest.(check bool) (rule ^ " fires") true (F.has_rule rule (lint src))

let lints_clean name src =
  Alcotest.(check (list string)) (name ^ " is clean") [] (rule_ids (lint src))

(* ------------------------------ Srclint ----------------------------- *)

(* Lint fixtures live in strings: the linter blanks string literals, so the
   violations below never trip the repo's own lint pass. *)

let test_poly_compare () =
  fires "poly-compare" "let sorted = List.sort compare xs\n";
  fires "poly-compare" "let r = Stdlib.compare a b\n";
  lints_clean "definition" "let compare a b = 0\n";
  lints_clean "qualified" "let c = Float.compare a b\n";
  lints_clean "labelled arg" "let s = sort ~compare xs\n"

let test_obj_magic () =
  fires "obj-magic" "let x = Obj.magic y\n";
  lints_clean "in string" {|let s = "Obj.magic"
|};
  lints_clean "in comment" "(* Obj.magic is banned *)\nlet x = 1\n"

let test_hashtbl_find () =
  fires "hashtbl-find" "let v = Hashtbl.find h k\n";
  lints_clean "find_opt" "let v = Hashtbl.find_opt h k\n"

let test_catchall_try () =
  fires "catchall-try" "let f () = try g () with _ -> 0\n";
  lints_clean "named exception" "let f () = try g () with Not_found -> 0\n";
  lints_clean "match wildcard" "let f x = match x with _ -> 0\n";
  lints_clean "record with" "let r2 = { r with field = 1 }\n"

let test_list_nth () =
  fires "list-nth" "let x = List.nth l 3\n";
  lints_clean "array access" "let x = a.(3)\n"

let test_pragma_suppression () =
  lints_clean "same line" "let v = Hashtbl.find h k (* lint: allow hashtbl-find *)\n";
  lints_clean "preceding line" "(* lint: allow hashtbl-find *)\nlet v = Hashtbl.find h k\n";
  lints_clean "allow all" "(* lint: allow all *)\nlet v = Hashtbl.find h (List.nth l 0)\n";
  (* A pragma only covers the named rules. *)
  let fs = lint "(* lint: allow list-nth *)\nlet v = Hashtbl.find h (List.nth l 0)\n" in
  Alcotest.(check (list string)) "other rules still fire" [ "hashtbl-find" ] (rule_ids fs)

let test_locations_and_severity () =
  let fs = lint "let a = 1\nlet x = List.nth l 3\n" in
  match fs with
  | [ f ] ->
      Alcotest.(check bool) "line 2" true (String.length f.F.where >= 12
                                           && String.sub f.F.where 0 12 = "fixture.ml:2");
      Alcotest.(check bool) "severity error" true (f.F.severity = F.Error)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_rules_catalogue () =
  let ids = List.map fst Lint.rules in
  Alcotest.(check int) "five lint rules" 5 (List.length ids);
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " listed") true (List.mem id ids))
    [ "poly-compare"; "obj-magic"; "hashtbl-find"; "catchall-try"; "list-nth" ]

let test_report_formats () =
  let fs = lint "let x = Obj.magic y\n" in
  let txt = F.render fs in
  Alcotest.(check bool) "text mentions rule" true
    (String.length txt > 0 && F.has_rule "obj-magic" fs);
  let json = String.trim (F.to_json fs) in
  Alcotest.(check bool) "json array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

(* ---------------------------- lexer edges ---------------------------- *)

(* Regressions for the shared lexer: literals that hide rule tokens, the
   '\'' char literal, underscore-delimited quoted strings, and number /
   operator tokens coexisting with the existing rules. *)

let test_lexer_string_edges () =
  lints_clean "escaped quote in string" "let s = \"a \\\" Obj.magic\"\nlet x = 1\n";
  lints_clean "nested comment" "(* outer (* List.nth *) still comment *)\nlet x = 1\n";
  lints_clean "string inside comment" "(* \"*)\" Obj.magic *)\nlet x = 1\n";
  lints_clean "quoted string" "let s = {x|Obj.magic|x}\nlet y = 1\n";
  lints_clean "underscore quoted string" "let s = {_|Obj.magic|_}\nlet y = 1\n"

let test_lexer_char_literals () =
  (* The escaped-quote char literal must not swallow the rest of the file:
     the violation after it still fires, and a banned name inside a
     subsequent string stays hidden. *)
  fires "list-nth" "let q = '\\''\nlet x = List.nth l 3\n";
  lints_clean "quote literal then string" "let q = '\\''\nlet s = \"Obj.magic\"\n";
  lints_clean "plain char and type var" "let c = 'a'\ntype t = 'b * int\n"

let test_lexer_numbers_and_ops () =
  (* Number and operator tokens must not perturb neighbouring rules. *)
  fires "poly-compare" "let x = 2.5e9\nlet s = List.sort compare xs\n";
  fires "catchall-try" "let f () = try 1.0 /. g () with _ -> 0.0\n";
  lints_clean "arith ops" "let y = (a +. 1e3) *. b -. c ** 2.0\nlet z = xs |> f\n"

let test_lexer_attributes () =
  (* An attribute is one token: rules still fire around it, payload text is
     hidden, and a multi-line payload keeps line numbers honest. *)
  fires "list-nth" "let[@inline] f l = List.nth l 3\n";
  lints_clean "attr payload hidden" "let[@deprecated \"use List.nth instead\"] f l = l\n";
  let fs = lint "let[@warning\n  \"-32\"] a = 1\nlet x = List.nth l 3\n" in
  match fs with
  | [ f ] -> Alcotest.(check bool) "line survives multi-line attr" true
               (String.length f.F.where >= 12 && String.sub f.F.where 0 12 = "fixture.ml:3")
  | _ -> Alcotest.fail "expected exactly one finding"

(* ------------------------------- Flow -------------------------------- *)

let analyze ?(file = "fixture.ml") src = Check.Flow.analyze_string ~file src

let flow_fires rule src =
  Alcotest.(check bool) (rule ^ " fires") true (F.has_rule rule (analyze src))

let flow_clean name src =
  Alcotest.(check (list string)) (name ^ " is clean") [] (rule_ids (analyze src))

let test_flow_div_unguarded () =
  flow_fires "div-unguarded" "let f a b = a /. b\n";
  flow_fires "div-unguarded" "let f a = a /. 0.0\n";
  flow_fires "div-unguarded" "let f a n = a /. float_of_int n\n";
  (* max with a zero floor is no guard at all *)
  flow_fires "div-unguarded" "let f a b = a /. max 0.0 b\n"

let test_flow_div_guards () =
  flow_clean "zero handled" "let f a b = if b = 0.0 then 0.0 else a /. b\n";
  flow_clean "bounded away" "let f a b = if b <= 0.0 then invalid_arg \"b\" else a /. b\n";
  flow_clean "max floor" "let f a b = a /. max 1e-9 b\n";
  flow_clean "max binding" "let f a b = let d = max 0.5 b in a /. d\n";
  flow_clean "assert" "let f a b = assert (b > 0.0);\n  a /. b\n";
  flow_clean "int guard" "let f a n = if n = 0 then 0.0 else a /. float_of_int n\n";
  flow_clean "literal divisor" "let f a = a /. 2.0\n";
  flow_clean "toplevel constant" "let day = 86_400.0\nlet f t = t /. day\n";
  (* Facts do not leak across toplevel definitions. *)
  flow_fires "div-unguarded" "let g b = b > 0.0\nlet f a b = a /. b\n"

let test_flow_nan_compare () =
  flow_fires "nan-compare" "let bad x = x > nan\n";
  flow_fires "nan-compare" "let bad x = nan = x\n";
  flow_fires "nan-compare" "let bad x = x < Float.nan\n";
  flow_fires "nan-compare" "let bad x = x <> x\n";
  flow_clean "explicit predicate" "let ok x = Float.is_nan x\n";
  (* Unary function definitions are [=]-self-comparison shaped; they must
     not fire. *)
  flow_clean "identity def" "let id x = x\nlet double x = x *. 2.0\n"

let test_flow_magic_unit () =
  flow_fires "magic-unit" "let f b = add b 2.5e9\n";
  flow_fires "magic-unit" "let f b = b *. 1e9\n";
  flow_clean "wrapped" "let f b = add b (U.bps 2.5e9)\n";
  flow_clean "wrapped qualified" "let t = Eutil.Units.gbps 20e9\n";
  flow_clean "named constant" "let oc48 = 2.5e9\n";
  flow_clean "optional default" "let make ?(capacity = 1e9) () = build capacity\n";
  flow_clean "small literal" "let eps = f 1e-9\n";
  (* units.ml itself defines the prefixes and is exempt. *)
  Alcotest.(check (list string)) "units.ml exempt" []
    (rule_ids (analyze ~file:"lib/util/units.ml" "let giga = scale 1e9\n"))

let test_flow_unit_relabel () =
  flow_fires "unit-relabel" "let b = U.bps (U.to_float w)\n";
  flow_fires "unit-relabel" "let b = Eutil.Units.watts (2.0 *. Eutil.Units.to_float x)\n";
  flow_clean "annotated" "let b = U.bps (U.to_float (x : U.bps U.q))\n";
  flow_clean "plain wrap" "let b = U.bps (f y)\n"

let test_flow_pragmas_and_catalogue () =
  flow_clean "pragma same line" "let f a b = a /. b (* lint: allow div-unguarded *)\n";
  flow_clean "pragma preceding" "(* lint: allow nan-compare *)\nlet bad x = x <> x\n";
  let ids = List.map fst Check.Flow.rules in
  Alcotest.(check int) "four analysis rules" 4 (List.length ids);
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " listed") true (List.mem id ids))
    [ "div-unguarded"; "nan-compare"; "magic-unit"; "unit-relabel" ]

(* Acceptance criterion: the shipped tree is clean. Running from the test
   sandbox we re-analyze the sources when dune exposes them; otherwise the
   @analyze alias covers it. *)
let test_flow_rule_classes_distinct () =
  let seeded =
    "let f a b = a /. b\n\
     let g x = x <> x\n\
     let h b = add b 2.5e9\n\
     let k w = U.bps (U.to_float w)\n"
  in
  Alcotest.(check (list string)) "all four classes fire on one fixture"
    [ "div-unguarded"; "magic-unit"; "nan-compare"; "unit-relabel" ]
    (rule_ids (analyze seeded))

(* ----------------------------- Invariant ---------------------------- *)

let ex = Topo.Example.make ()
let g = ex.Topo.Example.graph

let arc i j =
  match Graph.find_arc g i j with
  | Some a -> a
  | None -> Alcotest.fail "fixture arc missing"

(* Healthy always-on path A-E-H-K from the paper's Figure 3. *)
let p_aek () =
  Path.of_arcs g
    [ arc ex.Topo.Example.a ex.Topo.Example.e;
      arc ex.Topo.Example.e ex.Topo.Example.h;
      arc ex.Topo.Example.h ex.Topo.Example.k ]

(* The disjoint alternative A-D-G-K. *)
let p_adk () =
  Path.of_arcs g
    [ arc ex.Topo.Example.a ex.Topo.Example.d;
      arc ex.Topo.Example.d ex.Topo.Example.g;
      arc ex.Topo.Example.g ex.Topo.Example.k ]

let has rule fs = Alcotest.(check bool) (rule ^ " fires") true (F.has_rule rule fs)

let no_findings name fs = Alcotest.(check (list string)) (name ^ " is clean") [] (rule_ids fs)

let test_graph_clean () = no_findings "example graph" (Inv.check_graph g)

let test_path_valid () =
  no_findings "A-E-H-K"
    (Inv.check_path g ~expect:(ex.Topo.Example.a, ex.Topo.Example.k) ~where:"p" (p_aek ()))

let test_path_discontiguous () =
  (* Arcs A->E then H->K: E and H do not chain. The record is forged
     directly because Path.of_arcs would (rightly) refuse to build it. *)
  let p =
    { Path.src = ex.Topo.Example.a;
      dst = ex.Topo.Example.k;
      arcs = [| arc ex.Topo.Example.a ex.Topo.Example.e; arc ex.Topo.Example.h ex.Topo.Example.k |] }
  in
  has "path-discontiguous" (Inv.check_path g ~where:"p" p);
  let out_of_range = { Path.src = 0; dst = 0; arcs = [| Graph.arc_count g + 7 |] } in
  has "path-discontiguous" (Inv.check_path g ~where:"p" out_of_range)

let test_path_endpoint () =
  let p = p_aek () in
  has "path-endpoint" (Inv.check_path g ~where:"p" { p with Path.dst = ex.Topo.Example.j });
  (* Valid path, but installed for the wrong OD pair. *)
  has "path-endpoint" (Inv.check_path g ~expect:(ex.Topo.Example.c, ex.Topo.Example.k) ~where:"p" p)

let test_path_loop () =
  (* A->E followed by E->A revisits A. *)
  let p =
    { Path.src = ex.Topo.Example.a;
      dst = ex.Topo.Example.a;
      arcs = [| arc ex.Topo.Example.a ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.a |] }
  in
  has "path-loop" (Inv.check_path g ~where:"p" p)

let entry ?(on_demand = []) ?failover origin dest always_on =
  { Inv.origin; dest; always_on; on_demand; failover }

let test_table_coverage () =
  let fs = Inv.check_tables g ~pairs:[ (ex.Topo.Example.a, ex.Topo.Example.k) ] [] in
  has "table-coverage" fs;
  Alcotest.(check bool) "coverage is an error" true (F.errors fs <> [])

let test_table_duplicate_pair () =
  let e = entry ex.Topo.Example.a ex.Topo.Example.k (p_aek ()) ~on_demand:[ p_adk () ] in
  let e2 = { e with Inv.on_demand = [] } in
  has "table-duplicate-pair" (Inv.check_tables g ~pairs:[] [ e; e2 ])

let test_table_ondemand_dup () =
  let p = p_adk () in
  let e = entry ex.Topo.Example.a ex.Topo.Example.k (p_aek ()) ~on_demand:[ p; p ] in
  has "table-ondemand-dup" (Inv.check_tables g ~pairs:[] [ e ])

let test_table_failover_overlap () =
  (* B's only exit is the link B-E, so every failover must reuse it: the
     checker reports the overlap as a warning, not an error (§2.2 wants
     disjointness but the topology does not admit it). *)
  let b = Option.get ex.Topo.Example.b in
  let always_on =
    Path.of_arcs g
      [ arc b ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.h;
        arc ex.Topo.Example.h ex.Topo.Example.k ]
  in
  let failover =
    Path.of_arcs g
      [ arc b ex.Topo.Example.e; arc ex.Topo.Example.e ex.Topo.Example.c;
        arc ex.Topo.Example.c ex.Topo.Example.f; arc ex.Topo.Example.f ex.Topo.Example.j;
        arc ex.Topo.Example.j ex.Topo.Example.k ]
  in
  let fs = Inv.check_tables g ~pairs:[] [ entry b ex.Topo.Example.k always_on ~failover ] in
  has "table-failover-overlap" fs;
  Alcotest.(check (list string)) "overlap is only a warning" [] (rule_ids (F.errors fs));
  (* A disjoint failover is silent. *)
  let ok = entry ex.Topo.Example.a ex.Topo.Example.k (p_aek ()) ~failover:(p_adk ()) in
  no_findings "disjoint failover" (Inv.check_tables g ~pairs:[] [ ok ])

let test_lp_model () =
  let m = Lp.Model.create () in
  let x = Lp.Model.var m "x" in
  let _dup = Lp.Model.var m "x" in
  let _neg = Lp.Model.var m ~ub:(-2.0) "z" in
  Lp.Model.constr m [ (Float.nan, x) ] Lp.Simplex.Le 1.0;
  let fs = Inv.check_model m in
  has "lp-duplicate-var" fs;
  has "lp-bound" fs;
  has "lp-nonfinite" fs;
  let ok = Lp.Model.create () in
  let a = Lp.Model.var ok ~ub:5.0 "a" in
  Lp.Model.constr ok [ (1.0, a) ] Lp.Simplex.Ge 1.0;
  Lp.Model.minimize ok [ (1.0, a) ];
  no_findings "healthy model" (Inv.check_model ok)

let test_traffic_matrix () =
  let n = Graph.node_count g in
  let bad = Traffic.Matrix.create n in
  Traffic.Matrix.set bad ex.Topo.Example.a ex.Topo.Example.k (-3.0);
  has "tm-negative" (Inv.check_matrix g bad);
  has "tm-dimension" (Inv.check_matrix g (Traffic.Matrix.create (n + 1)));
  no_findings "gravity matrix" (Inv.check_matrix g (Traffic.Gravity.make g ~total:(Eutil.Units.mbps 1.0) ()))

let test_power_model () =
  let good = Power.Model.cisco12000 g in
  no_findings "cisco model" (Inv.check_power good g);
  (* Forge a physically impossible model: the checked [Units.watts]
     constructor would reject NaN but happily carries a negative value, which
     is exactly what the power-monotone invariant is there to catch. *)
  let bad = { good with Power.Model.chassis = (fun _ -> Eutil.Units.watts (-5.0)) } in
  has "power-monotone" (Inv.check_power bad g)

(* Framework wiring: precompute validates its own tables when the flag is on
   (the default) and still succeeds on a healthy topology. *)
let test_framework_validates () =
  Alcotest.(check bool)
    "checks on by default" true
    (Atomic.get Response.Framework.install_checks);
  let pairs = [ (ex.Topo.Example.a, ex.Topo.Example.k); (ex.Topo.Example.c, ex.Topo.Example.k) ] in
  let tables = Response.Framework.precompute g (Power.Model.cisco12000 g) ~pairs in
  Alcotest.(check int) "entries cover pairs" (List.length pairs)
    (List.length (Response.Tables.entries tables))

(* ------------------------- callgraph / effect ----------------------- *)

module Cg = Check.Callgraph
module Eff = Check.Effect

let src ?(entry = false) ~lib file text =
  { Cg.sc_file = file; Cg.sc_library = lib; Cg.sc_entry = entry; Cg.sc_text = text }

(* A two-library fixture with a known call graph: [helper] is private and
   partial, [top] reaches it, [safe] is total and never called. *)
let fixture_sources =
  [
    src ~lib:"alib" "alib/a.ml"
      "let helper xs = List.hd xs\n\nlet safe x = x + 1\n\nlet top xs = helper xs\n";
    src ~lib:"alib" "alib/a.mli"
      "val top : int list -> int\n(** First element. *)\n\nval safe : int -> int\n";
    src ~lib:"blib" "blib/b.ml" "let use xs = A.top xs\n";
    src ~lib:"blib" "blib/b.mli" "val use : int list -> int\n";
    src ~entry:true ~lib:"main" "bin/main.ml" "let () = ignore (B.use [ 1 ])\n";
  ]

let fixture () = Cg.build_sources fixture_sources

let test_cg_defs () =
  let g = fixture () in
  let names =
    Array.to_list g.Cg.defs
    |> List.map (fun d -> d.Cg.d_module ^ "." ^ d.Cg.d_name)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "all toplevel defs found"
    [ "A.helper"; "A.safe"; "A.top"; "B.use"; "Main.()" ]
    names;
  let helper = Option.get (Cg.find_def g ~module_:"A" ~name:"helper") in
  let top = Option.get (Cg.find_def g ~module_:"A" ~name:"top") in
  Alcotest.(check bool) "helper hidden by mli" false helper.Cg.d_public;
  Alcotest.(check bool) "top exported by mli" true top.Cg.d_public;
  Alcotest.(check bool) "entry flagged" true
    (Option.get (Cg.find_def g ~module_:"Main" ~name:"()")).Cg.d_entry

let test_cg_edges () =
  let g = fixture () in
  let id m n = (Option.get (Cg.find_def g ~module_:m ~name:n)).Cg.d_id in
  Alcotest.(check (list int)) "top calls helper" [ id "A" "helper" ] g.Cg.callees.(id "A" "top");
  Alcotest.(check (list int)) "use resolves cross-library A.top" [ id "A" "top" ]
    g.Cg.callees.(id "B" "use");
  Alcotest.(check (list int)) "safe calls nothing" [] g.Cg.callees.(id "A" "safe");
  (* Shortest chain entry -> partial primitive. *)
  let base i = Eff.base_of_body g.Cg.defs.(i).Cg.d_body in
  match
    Cg.witness g ~from:(id "Main" "()")
      ~target:(fun i -> not (Eff.Strings.is_empty (base i).Eff.partial))
  with
  | Some chain ->
      Alcotest.(check (list int))
        "witness chain"
        [ id "Main" "()"; id "B" "use"; id "A" "top"; id "A" "helper" ]
        chain
  | None -> Alcotest.fail "no witness chain found"

let test_cg_submodule_and_alias () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/deep.ml"
          "module Builder = struct\n  let make x = Option.get x\nend\n";
        src ~lib:"blib" "blib/client.ml"
          "module D = Deep\n\nlet go x = D.Builder.make x\n";
      ]
  in
  let mk = Option.get (Cg.find_def g ~module_:"Deep.Builder" ~name:"make") in
  let go = Option.get (Cg.find_def g ~module_:"Client" ~name:"go") in
  Alcotest.(check (list int)) "alias + submodule resolve" [ mk.Cg.d_id ] g.Cg.callees.(go.Cg.d_id)

let test_cg_raise_doc () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/r.ml"
          "let boom () = failwith \"no\"\n\nlet quiet () = failwith \"no\"\n";
        src ~lib:"alib" "alib/r.mli"
          "val boom : unit -> unit\n(** Always fails.\n    @raise Failure always. *)\n\n\
           val quiet : unit -> unit\n(** Undocumented. *)\n";
      ]
  in
  let doc v = List.find_opt (fun x -> x.Cg.v_name = v) g.Cg.vals in
  Alcotest.(check bool) "boom documented" true (Option.get (doc "boom")).Cg.v_raise_doc;
  Alcotest.(check bool) "quiet undocumented" false (Option.get (doc "quiet")).Cg.v_raise_doc

let effect_of s = Eff.base_of_string s
let strings l = Eff.Strings.of_list l

let test_effect_base () =
  let e = effect_of "let f h = Hashtbl.find h k\n" in
  Alcotest.(check bool) "partial find" true (Eff.Strings.mem "Hashtbl.find" e.Eff.partial);
  let e = effect_of "let f xs = List.hd xs + Option.get o\n" in
  Alcotest.(check bool) "hd+get" true
    (Eff.equal_effects e { Eff.empty with Eff.partial = strings [ "List.hd"; "Option.get" ] });
  Alcotest.(check bool) "literal Array.get fine" true
    (Eff.equal_effects (effect_of "let f a = Array.get a 0\n") Eff.empty);
  Alcotest.(check bool) "computed Array.get partial" true
    (Eff.Strings.mem "Array.get" (effect_of "let f a i = Array.get a i\n").Eff.partial);
  Alcotest.(check bool) "raise" true (effect_of "let f () = failwith \"x\"\n").Eff.raises;
  Alcotest.(check bool) "raise Exit local" false (effect_of "let f () = raise Exit\n").Eff.raises;
  Alcotest.(check bool) "locally handled exn" false
    (effect_of "let f () = try g (raise Overflow) with Overflow -> 0\n").Eff.raises;
  Alcotest.(check bool) "clock nondet" true
    (Eff.Strings.mem "Unix.gettimeofday" (effect_of "let now () = Unix.gettimeofday ()\n").Eff.nondet);
  Alcotest.(check bool) "io" true (effect_of "let f () = print_endline \"hi\"\n").Eff.io

let test_effect_sorted_fold () =
  let bare = effect_of "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" in
  Alcotest.(check bool) "bare fold is nondet" true (Eff.Strings.mem "Hashtbl.fold" bare.Eff.nondet);
  let sorted =
    effect_of
      "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort Int.compare\n"
  in
  Alcotest.(check bool) "fold-then-sort is deterministic" true
    (Eff.Strings.is_empty sorted.Eff.nondet)

let test_effect_fixpoint_transitive () =
  let g = fixture () in
  let eff = Eff.infer g in
  let id m n = (Option.get (Cg.find_def g ~module_:m ~name:n)).Cg.d_id in
  Alcotest.(check bool) "partial propagates to entry" true
    (Eff.Strings.mem "List.hd" eff.(id "Main" "()").Eff.partial);
  Alcotest.(check bool) "safe stays clean" true (Eff.equal_effects eff.(id "A" "safe") Eff.empty)

let test_effect_rules_fire () =
  let findings = Eff.analyze (fixture ()) in
  let wheres r =
    List.filter (fun f -> f.F.rule = r) findings
    |> List.map (fun f -> f.F.where)
    |> List.sort String.compare
  in
  (* Both public values on the chain are reported, each with its own
     witness. *)
  Alcotest.(check (list string))
    "partial-reachable on both public vals"
    [ "alib/a.ml:5"; "blib/b.ml:1" ]
    (wheres "partial-reachable");
  Alcotest.(check (list string)) "only safe is dead" [ "alib/a.ml:3" ] (wheres "dead-function");
  Alcotest.(check (list string)) "no nondet-export in fixture" [] (wheres "nondet-export")

let test_effect_nondet_export_rule () =
  let bad =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/export.ml"
          "let to_json h = Hashtbl.fold (fun k v acc -> acc ^ k ^ string_of_float v) h \"\"\n";
      ]
  in
  Alcotest.(check bool) "unsorted export flagged" true
    (F.has_rule "nondet-export" (Eff.analyze bad));
  let good =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/export.ml"
          "let to_json h =\n\
          \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []\n\
          \  |> List.sort (fun (a, _) (b, _) -> String.compare a b)\n\
          \  |> List.map snd |> List.map string_of_float |> String.concat \",\"\n";
      ]
  in
  Alcotest.(check bool) "sorted export clean" false
    (F.has_rule "nondet-export" (Eff.analyze good))

let test_effect_undocumented_raise_rule () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/r.ml"
          "let boom () = failwith \"no\"\n\nlet quiet () = failwith \"no\"\n";
        src ~lib:"alib" "alib/r.mli"
          "val boom : unit -> unit\n(** Always fails.\n    @raise Failure always. *)\n\n\
           val quiet : unit -> unit\n(** Undocumented. *)\n";
      ]
  in
  let hits =
    List.filter (fun f -> f.F.rule = "undocumented-raise") (Eff.analyze g)
    |> List.map (fun f -> f.F.where)
  in
  Alcotest.(check (list string)) "only the undocumented val" [ "alib/r.mli:5" ] hits

(* Monotonicity: adding one edge to a random graph never shrinks any
   definition's fixpoint effect set. *)
let prop_fixpoint_monotone =
  let n = 8 in
  let base_of_seed st i =
    let bit k = (st lsr ((4 * i) + k)) land 1 = 1 in
    {
      Eff.raises = bit 0;
      Eff.partial = (if bit 1 then strings [ "List.hd" ] else Eff.Strings.empty);
      Eff.nondet = (if bit 2 then strings [ "Hashtbl.fold" ] else Eff.Strings.empty);
      Eff.io = bit 3;
    }
  in
  QCheck.Test.make ~name:"effect fixpoint is monotone in the edge set" ~count:200
    QCheck.(triple (int_bound ((1 lsl 30) - 1)) (int_bound ((1 lsl 30) - 1)) (pair (int_bound (n - 1)) (int_bound (n - 1))))
    (fun (bseed, eseed, (extra_src, extra_dst)) ->
      let edges i =
        (* A deterministic pseudo-random adjacency from the seed. *)
        List.filter (fun j -> (eseed lsr ((3 * i) + j)) land 1 = 1) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      let base i = base_of_seed bseed i in
      let before = Eff.fixpoint ~n ~callees:edges ~base in
      let edges' i = if i = extra_src then extra_dst :: edges i else edges i in
      let after = Eff.fixpoint ~n ~callees:edges' ~base in
      let ok = ref true in
      for i = 0 to n - 1 do
        if not (Eff.leq before.(i) after.(i)) then ok := false
      done;
      !ok)

let test_budget_parse () =
  Alcotest.(check (list (pair string int)))
    "parses"
    [ ("dead-function", 3); ("undocumented-raise", 0) ]
    (Eff.parse_budget "{\n  \"dead-function\": 3,\n  \"undocumented-raise\": 0\n}\n");
  Alcotest.(check (list (pair string int))) "empty object" [] (Eff.parse_budget "{}");
  Alcotest.check_raises "malformed" (Invalid_argument "Effect.parse_budget: expected '{'")
    (fun () -> ignore (Eff.parse_budget "[]"))

let test_cg_attributed_defs () =
  (* [let[@inline] f] and [let%ext f] are definitions: the lexer folds the
     attribute into one token and def_name skips it (and the extension
     point) to the binding name. *)
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/att.ml"
          "let[@inline] double x = x * 2\n\n\
           let[@warning \"-32\"] rec count n = if n = 0 then 0 else count (n - 1)\n\n\
           let use x = double (count x)\n";
      ]
  in
  let id n = (Option.get (Cg.find_def g ~module_:"Att" ~name:n)).Cg.d_id in
  Alcotest.(check (list int))
    "use calls both attributed defs"
    (List.sort Int.compare [ id "double"; id "count" ])
    (List.sort Int.compare (List.filter (fun i -> i <> id "use") g.Cg.callees.(id "use")))

let test_budget_ratchet () =
  let warn rule = F.v ~severity:F.Warn ~rule ~where:"x:1" "w" in
  let findings = [ warn "dead-function"; warn "dead-function"; warn "undocumented-raise" ] in
  Alcotest.(check int) "within budget -> no finding" 0
    (List.length
       (Eff.over_budget ~budget:[ ("dead-function", 2); ("undocumented-raise", 1) ] findings));
  let over = Eff.over_budget ~budget:[ ("dead-function", 1) ] findings in
  Alcotest.(check (list string)) "both rules over" [ "budget-exceeded"; "budget-exceeded" ]
    (List.map (fun f -> f.F.rule) over);
  Alcotest.(check bool) "budget violations are errors" true
    (List.for_all (fun f -> f.F.severity = F.Error) over)

(* ------------------------------- share ------------------------------- *)

module Sh = Check.Share

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Two libraries with known shared state: an unguarded counter (written by
   [bump], read by [peek]), an unguarded PRNG stream drawn by [draw] and
   [roll], and a pure function. *)
let share_fixture () =
  Cg.build_sources
    [
      src ~lib:"slib" "slib/store.ml"
        "let count = ref 0\n\nlet bump () = incr count\n\nlet tick () = bump ()\n\n\
         let peek () = !count\n\nlet pure x = x + 1\n";
      src ~lib:"slib" "slib/draw.ml"
        "let stream = Eutil.Prng.create 7\n\nlet draw () = Eutil.Prng.float stream 1.0\n\n\
         let roll () = draw ()\n";
      src ~entry:true ~lib:"main" "bin/smain.ml"
        "let () =\n  Store.tick ();\n  ignore (Store.peek ());\n  ignore (Draw.roll ());\n\
        \  ignore (Store.pure 1)\n";
    ]

let share_root a name =
  match Array.to_list (Sh.roots a) |> List.find_opt (fun r -> r.Sh.r_name = name) with
  | Some r -> r
  | None -> Alcotest.failf "root %s not harvested" name

let test_share_roots () =
  let a = Sh.audit (share_fixture ()) in
  let count = share_root a "Store.count" in
  Alcotest.(check bool) "counter is mutable" true (count.Sh.r_kind = Sh.Mutable);
  Alcotest.(check bool) "counter unguarded" false count.Sh.r_guarded;
  Alcotest.(check string) "counter located" "slib/store.ml" count.Sh.r_file;
  Alcotest.(check int) "counter line" 1 count.Sh.r_line;
  let stream = share_root a "Draw.stream" in
  Alcotest.(check bool) "stream is a PRNG root" true (stream.Sh.r_kind = Sh.Prng);
  let random = share_root a "Stdlib.Random" in
  Alcotest.(check bool) "ambient Random is builtin" true (random.Sh.r_def = -1);
  (* Functions never become roots, only value bindings do. *)
  Alcotest.(check int) "exactly three roots" 3 (Array.length (Sh.roots a))

let test_share_classify () =
  let g = share_fixture () in
  let a = Sh.audit g in
  let id m n = (Option.get (Cg.find_def g ~module_:m ~name:n)).Cg.d_id in
  Alcotest.(check bool) "bump writes" true (Sh.classify a (id "Store" "bump") = Sh.Writer);
  Alcotest.(check bool) "tick writes transitively" true
    (Sh.classify a (id "Store" "tick") = Sh.Writer);
  Alcotest.(check bool) "peek only reads" true (Sh.classify a (id "Store" "peek") = Sh.Reader);
  Alcotest.(check bool) "pure is domain-safe" true
    (Sh.classify a (id "Store" "pure") = Sh.Domain_safe);
  Alcotest.(check bool) "draw writes its stream" true
    (Sh.classify a (id "Draw" "draw") = Sh.Writer);
  Alcotest.(check bool) "the entry point writes everything" true
    (Sh.classify a (id "Smain" "()") = Sh.Writer);
  (* The counter's own initialiser is neither a read nor a write. *)
  Alcotest.(check bool) "the binding itself is safe" true
    (Sh.classify a (id "Store" "count") = Sh.Domain_safe);
  let count = (share_root a "Store.count").Sh.r_id in
  let stream = (share_root a "Draw.stream").Sh.r_id in
  Alcotest.(check (list int)) "bump's write set" [ count ] (Sh.writes a (id "Store" "bump"));
  Alcotest.(check (list int)) "peek's read set" [ count ] (Sh.reads a (id "Store" "peek"));
  Alcotest.(check bool) "entry reaches both roots" true
    (let ws = Sh.writes a (id "Smain" "()") in
     List.mem count ws && List.mem stream ws)

let share_findings ?manifest sources rule =
  List.filter (fun f -> f.F.rule = rule) (Sh.analyze ?manifest (Cg.build_sources sources))
  |> List.map (fun f -> f.F.message)

let test_share_unguarded_global () =
  let msgs =
    share_findings
      [
        src ~lib:"slib" "slib/store.ml" "let count = ref 0\n\nlet bump () = incr count\n";
      ]
      "unguarded-global"
  in
  Alcotest.(check int) "written unguarded root warns" 1 (List.length msgs);
  Alcotest.(check bool) "message names the root" true
    (List.exists
       (fun m ->
         String.length m > 0
         && String.length (String.concat "" [ m ]) > 0
         && contains_sub m "Store.count")
       msgs)

let test_share_guarded_silent () =
  (* Same counter, but the owning file shows a Mutex discipline: guarded,
     so neither unguarded-global nor shared-write-reachable fires. *)
  let sources =
    [
      src ~lib:"slib" "slib/store.ml"
        "let lock = Mutex.create ()\n\nlet count = ref 0\n\n\
         let bump () = Mutex.lock lock;\n  incr count;\n  Mutex.unlock lock\n";
    ]
  in
  Alcotest.(check (list string)) "guarded root stays silent" []
    (share_findings sources "unguarded-global");
  Alcotest.(check (list string)) "guarded root certifiable" []
    (share_findings ~manifest:[ ("w", [ "Store.bump" ]) ] sources "shared-write-reachable")

let test_share_readonly_silent () =
  (* Allocated but never mutated: shared read-only data, not a hazard. *)
  let sources =
    [
      src ~lib:"slib" "slib/table.ml"
        "let table = Hashtbl.create 16\n\nlet get k = Hashtbl.find_opt table k\n";
    ]
  in
  Alcotest.(check (list string)) "unwritten root stays silent" []
    (share_findings sources "unguarded-global")

let test_share_write_reachable () =
  let sources =
    [
      src ~lib:"slib" "slib/store.ml"
        "let count = ref 0\n\nlet bump () = incr count\n\nlet tick () = bump ()\n";
    ]
  in
  let msgs =
    share_findings ~manifest:[ ("workers", [ "Store.tick" ]) ] sources "shared-write-reachable"
  in
  Alcotest.(check int) "one certified entrypoint, one root" 1 (List.length msgs);
  Alcotest.(check bool) "witness chain reaches the writer" true
    (contains_sub (List.hd msgs) "Store.tick -> Store.bump")

let test_share_prng_rules () =
  let sources =
    [
      src ~lib:"slib" "slib/draw.ml"
        "let stream = Eutil.Prng.create 7\n\nlet draw () = Eutil.Prng.float stream 1.0\n\n\
         let roll () = draw ()\n";
    ]
  in
  (* One entrypoint drawing from the stream: a race (it is unguarded) but
     not a sharing violation. *)
  Alcotest.(check (list string)) "single user: no prng-shared" []
    (share_findings ~manifest:[ ("w", [ "Draw.draw" ]) ] sources "prng-shared");
  let msgs =
    share_findings
      ~manifest:[ ("w", [ "Draw.draw"; "Draw.roll" ]) ]
      sources "prng-shared"
  in
  Alcotest.(check int) "two users: prng-shared fires" 1 (List.length msgs);
  Alcotest.(check bool) "both entrypoints named" true
    (contains_sub (List.hd msgs) "Draw.draw"
    && contains_sub (List.hd msgs) "Draw.roll")

let test_share_ambient_random () =
  (* The ambient Stdlib.Random state is a builtin unguarded PRNG root. *)
  let sources =
    [ src ~lib:"slib" "slib/jit.ml" "let jitter () = Random.float 1.0\n" ]
  in
  let msgs =
    share_findings ~manifest:[ ("w", [ "Jit.jitter" ]) ] sources "shared-write-reachable"
  in
  Alcotest.(check int) "Random use under an entrypoint is an error" 1 (List.length msgs);
  Alcotest.(check bool) "names the ambient root" true
    (contains_sub (List.hd msgs) "Stdlib.Random")

let test_share_manifest_errors () =
  let sources = [ src ~lib:"slib" "slib/a.ml" "let f x = x + 1\n" ] in
  let msgs =
    share_findings ~manifest:[ ("w", [ "Nope.nothing" ]) ] sources "parallel-manifest"
  in
  Alcotest.(check int) "unresolvable entrypoint is an error" 1 (List.length msgs);
  let all = Sh.analyze ~manifest:[ ("w", [ "Nope.nothing" ]) ] (Cg.build_sources sources) in
  Alcotest.(check bool) "and it is Error severity" true
    (List.for_all (fun f -> f.F.severity = F.Error)
       (List.filter (fun f -> f.F.rule = "parallel-manifest") all))

let test_share_manifest_parse () =
  Alcotest.(check (list (pair string (list string))))
    "parses regions"
    [ ("chaos", [ "Harness.run_trial" ]); ("pairs", [ "Failover.pair_path"; "X.y" ]) ]
    (Sh.parse_manifest
       "{\n  \"chaos\": [\"Harness.run_trial\"],\n  \"pairs\": [\"Failover.pair_path\", \"X.y\"]\n}\n");
  Alcotest.(check (list (pair string (list string)))) "empty object" [] (Sh.parse_manifest "{}");
  Alcotest.check_raises "malformed" (Invalid_argument "Share.parse_manifest: expected '{'")
    (fun () -> ignore (Sh.parse_manifest "[]"))

let test_share_rules_catalogue () =
  let ids = List.map fst Sh.rules in
  Alcotest.(check (list string))
    "all four rules listed"
    [ "shared-write-reachable"; "unguarded-global"; "prng-shared"; "parallel-manifest" ]
    ids

(* ------------------------------- cost ------------------------------- *)

module Co = Check.Cost

let cost_rule ?manifest rule sources =
  List.filter (fun f -> f.F.rule = rule) (Co.analyze ?manifest (Cg.build_sources sources))

let depth_of text tok =
  match Array.to_list (Co.depths_of_string text) |> List.filter (fun (t, _) -> t = tok) with
  | (_, dep) :: _ -> dep
  | [] -> Alcotest.fail ("token not found: " ^ tok)

let test_cost_depths () =
  Alcotest.(check int) "for body" 1 (depth_of "for i = 0 to 9 do work i done" "work");
  Alcotest.(check int) "after done" 0 (depth_of "for i = 0 to 9 do step i done; total" "total");
  Alcotest.(check int) "hof span" 1 (depth_of "List.iter (fun x -> work x) xs" "work");
  Alcotest.(check int) "after in" 0 (depth_of "let ys = List.map f xs in total ys" "total");
  Alcotest.(check int) "nested hofs" 2
    (depth_of "List.iter (fun x -> List.iter (fun y -> work y) ys) xs" "work");
  Alcotest.(check int) "rec body" 1 (depth_of "let rec loop x = work (loop x)" "work");
  Alcotest.(check int) "scalar module map" 0 (depth_of "Option.map (fun x -> work x) o" "work")

let test_cost_quadratic_rule () =
  let bad = [ src ~lib:"clib" "clib/c.ml" "let join xs ys = List.map (fun x -> x @ ys) xs\n" ] in
  (match cost_rule "quadratic-list-op" bad with
  | [ f ] ->
      Alcotest.(check bool) "names the prim" true (contains_sub f.F.message "@");
      Alcotest.(check bool) "is an error" true (f.F.severity = F.Error)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 quadratic finding, got %d" (List.length fs)));
  (* [( *@ )] in operator-name position is not list append. *)
  let op =
    [
      src ~lib:"clib" "clib/c.ml"
        "let total xs = List.fold_left (fun acc x -> U.( *@ ) acc x) zero xs\n";
    ]
  in
  Alcotest.(check int) "operator position exempt" 0
    (List.length (cost_rule "quadratic-list-op" op))

let test_cost_rebuild_rule () =
  let bad =
    [ src ~lib:"clib" "clib/c.ml" "let f xs = List.map (fun _ -> Hashtbl.create 4) xs\n" ]
  in
  Alcotest.(check int) "Hashtbl.create in loop flagged" 1
    (List.length (cost_rule "rebuild-in-loop" bad));
  (* Array.init is the sanctioned escape hatch for per-item allocation. *)
  let ok =
    [ src ~lib:"clib" "clib/c.ml" "let f n xs = List.map (fun x -> Array.init n (fun i -> i + x)) xs\n" ]
  in
  Alcotest.(check int) "Array.init exempt" 0 (List.length (cost_rule "rebuild-in-loop" ok))

let test_cost_fixed_idioms () =
  (* Regression guards for the shapes eliminated across lib/ in this
     change: each original is flagged, its replacement idiom is clean. *)
  let count rule text = List.length (cost_rule rule [ src ~lib:"clib" "clib/c.ml" text ]) in
  (* Path.pp: inline Array.to_list inside a String.concat span vs hoisted. *)
  Alcotest.(check int) "inline to_list flagged" 1
    (count "rebuild-in-loop" "let pp names g = String.concat \"-\" (Array.to_list (Array.map g names))\n");
  Alcotest.(check int) "hoisted to_list clean" 0
    (count "rebuild-in-loop"
       "let pp names g = let parts = Array.to_list (Array.map g names) in String.concat \"-\" parts\n");
  (* Yen: ban table rebuilt per spur iteration vs hoisted + reset. *)
  Alcotest.(check int) "per-iteration table flagged" 1
    (count "rebuild-in-loop" "let f n = for _ = 0 to n do ignore (Hashtbl.create 8) done\n");
  Alcotest.(check int) "hoisted + reset clean" 0
    (count "rebuild-in-loop"
       "let f n = let banned = Hashtbl.create 8 in for _ = 0 to n do Hashtbl.reset banned done\n");
  (* Append-accumulation vs cons + reverse. *)
  Alcotest.(check int) "append in loop flagged" 1
    (count "quadratic-list-op"
       "let f xs = let acc = ref [] in List.iter (fun x -> acc := !acc @ [ x ]) xs; !acc\n");
  Alcotest.(check int) "cons + rev clean" 0
    (count "quadratic-list-op"
       "let f xs = let acc = ref [] in List.iter (fun x -> acc := x :: !acc) xs; List.rev !acc\n")

let test_cost_hot_rule () =
  let sources =
    [
      src ~lib:"clib" "clib/hot.ml"
        "let step x = Array.copy x\n\nlet run xs = List.iter (fun x -> ignore (step x)) xs\n";
    ]
  in
  (* Without a hot declaration the per-iteration allocation is silent. *)
  Alcotest.(check int) "silent when not hot" 0
    (List.length (cost_rule "alloc-in-hot-loop" sources));
  match cost_rule ~manifest:[ ("hot", [ "Hot.run" ]) ] "alloc-in-hot-loop" sources with
  | [ f ] ->
      Alcotest.(check bool) "is a warning" true (f.F.severity = F.Warn);
      Alcotest.(check bool) "names the entrypoint" true
        (contains_sub f.F.message "Hot.run")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 hot warning, got %d" (List.length fs))

let test_cost_memo_rule () =
  let run memo text =
    cost_rule ~manifest:[ ("memo", [ memo ]) ] "memo-unsafe"
      [ src ~lib:"clib" "clib/m.ml" text ]
  in
  (* Uncancelled Hashtbl.iter: nondeterministic. *)
  (match run "M.f" "let f tbl = Hashtbl.iter (fun k _ -> ignore k) tbl\n" with
  | [ f ] ->
      Alcotest.(check bool) "mentions Hashtbl.iter" true
        (contains_sub f.F.message "Hashtbl.iter")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 nondet finding, got %d" (List.length fs)));
  (* The fold-then-sort idiom certifies: the sorter must follow the fold. *)
  Alcotest.(check int) "fold-then-sort clean" 0
    (List.length
       (run "M.g"
          "let g tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare\n"));
  (* Partiality through a callee. *)
  (match run "M.m" "let h xs = List.hd xs\n\nlet m xs = h xs\n" with
  | [ f ] ->
      Alcotest.(check bool) "mentions List.hd" true (contains_sub f.F.message "List.hd");
      Alcotest.(check bool) "witness chain through h" true
        (contains_sub f.F.message "M.h")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 partial finding, got %d" (List.length fs)));
  (* A direct raise in the memoized body disqualifies it. *)
  (match run "M.r" "let r x = if x < 0 then invalid_arg \"neg\" else x\n" with
  | [ f ] ->
      Alcotest.(check bool) "mentions direct raise" true
        (contains_sub f.F.message "raises directly")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 raise finding, got %d" (List.length fs)))

let test_cost_manifest_rule () =
  let sources = [ src ~lib:"clib" "clib/c.ml" "let id x = x\n" ] in
  (match cost_rule ~manifest:[ ("frozen", []) ] "cost-manifest" sources with
  | [ f ] ->
      Alcotest.(check bool) "unknown key named" true (contains_sub f.F.message "frozen")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 unknown-key error, got %d" (List.length fs)));
  match cost_rule ~manifest:[ ("memo", [ "Nope.nothing" ]) ] "cost-manifest" sources with
  | [ f ] ->
      Alcotest.(check bool) "unresolved entry named" true
        (contains_sub f.F.message "Nope.nothing")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 unresolved error, got %d" (List.length fs))

let test_cost_infer_propagation () =
  let cg =
    Cg.build_sources
      [
        src ~lib:"clib" "clib/m.ml"
          "let fresh n = Array.make n 0\n\
           let per_row rows = List.map (fun n -> fresh n) rows\n\
           let flat xs = List.concat xs\n";
      ]
  in
  let infos = Co.infer cg in
  let info_of name =
    match
      Array.to_list (Array.mapi (fun i d -> (d, infos.(i))) cg.Cg.defs)
      |> List.filter (fun ((d : Cg.def), _) -> d.Cg.d_name = name)
    with
    | (_, info) :: _ -> info
    | [] -> Alcotest.fail ("def not found: " ^ name)
  in
  let fresh = info_of "fresh" in
  Alcotest.(check bool) "fresh allocates" true fresh.Co.c_alloc;
  Alcotest.(check bool) "fresh not per-iteration by itself" false fresh.Co.c_alloc_per_iter;
  Alcotest.(check int) "fresh has no loops" 0 fresh.Co.c_local_depth;
  let per_row = info_of "per_row" in
  Alcotest.(check int) "per_row loops once" 1 per_row.Co.c_local_depth;
  Alcotest.(check bool) "allocation inside the loop propagates" true per_row.Co.c_alloc_per_iter;
  Alcotest.(check bool) "cost reaches depth 1" true (per_row.Co.c_cost >= 1)

let test_cost_rules_catalogue () =
  Alcotest.(check (list string)) "rule ids"
    [ "quadratic-list-op"; "rebuild-in-loop"; "alloc-in-hot-loop"; "memo-unsafe"; "cost-manifest" ]
    (List.map fst Co.rules)

(* ----------------------- Check.Doc (odoc stand-in) -------------------- *)

let doc_findings text = Check.Doc.check_string ~file:"fix.mli" text

let test_doc_clean () =
  let text =
    "val f : int -> int\n\
     (** Doubles, honouring [x @ y], a \"*)\" in a string and a\n\
     \   nested (* plain (* comment *) *) inside.\n\
     \   @raise Invalid_argument on negatives.\n\
     \   @raise Unix.Unix_error too.\n\
     \   @see <http://example.com> the spec. *)\n"
  in
  Alcotest.(check int) "well-formed docs are silent" 0 (List.length (doc_findings text))

let test_doc_raise_malformed () =
  (match doc_findings "(** Text.\n    @raise invalid_arg lowercase. *)\nval f : int\n" with
  | [ f ] ->
      Alcotest.(check string) "rule" "raise-malformed" f.F.rule;
      Alcotest.(check string) "line of the tag" "fix.mli:2" f.F.where;
      Alcotest.(check bool) "names the offender" true (contains_sub f.F.message "invalid_arg")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  match doc_findings "(** Text.\n    @raise *)\nval f : int\n" with
  | [ f ] -> Alcotest.(check string) "bare @raise is malformed" "raise-malformed" f.F.rule
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_doc_unknown_tag () =
  (match doc_findings "(** Text.\n    @raises Invalid_argument typo. *)\n" with
  | [ f ] ->
      Alcotest.(check string) "rule" "doc-unknown-tag" f.F.rule;
      Alcotest.(check bool) "names the tag" true (contains_sub f.F.message "@raises")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  (* A mid-line @ (operator prose, e-mail, code span) is never a tag. *)
  Alcotest.(check int) "mid-line @ ignored" 0
    (List.length (doc_findings "(** Concatenation is [xs @ ys]; mail root@example. *)\n"))

let test_doc_unterminated () =
  match doc_findings "let x = 1\n(** Never closed...\n    @raise Failure anyway.\n" with
  | [ f ] ->
      Alcotest.(check string) "rule" "doc-unterminated" f.F.rule;
      Alcotest.(check string) "line of the opener" "fix.mli:2" f.F.where
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let test_doc_plain_comments_exempt () =
  (* Only (** *) doc comments are validated: a plain (* *) comment and a
     stopped (*** *) comment may say anything. *)
  Alcotest.(check int) "plain comments exempt" 0
    (List.length
       (doc_findings "(* @raises whatever *)\n(*** @raises whatever ***)\nval f : int\n"))

let test_doc_rules_catalogue () =
  Alcotest.(check (list string)) "rule ids"
    [ "raise-malformed"; "doc-unknown-tag"; "doc-unterminated" ]
    (List.map fst Check.Doc.rules)

(* ------------------------------- lock -------------------------------- *)

module Lk = Check.Lock

let lock_findings ?manifest sources = Lk.analyze ?manifest (Cg.build_sources sources)

(* Closure-argument resolution (Callgraph): a wrapper that applies its
   formal parameter gains call edges to bare-identifier arguments passed
   at its call sites, so reachability sees through [run task]. *)
let test_cg_closure_args () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/w.ml"
          "let run f = f ()\n\nlet task () = print_endline \"t\"\n\nlet go () = run task\n";
      ]
  in
  let id n = (Option.get (Cg.find_def g ~module_:"W" ~name:n)).Cg.d_id in
  let run_def = Option.get (Cg.find_def g ~module_:"W" ~name:"run") in
  let go_def = Option.get (Cg.find_def g ~module_:"W" ~name:"go") in
  Alcotest.(check (list string)) "run's params" [ "f" ] (Cg.def_params run_def);
  Alcotest.(check bool) "run applies its param" true (Cg.applies_params run_def);
  Alcotest.(check bool) "go applies nothing" false (Cg.applies_params go_def);
  Alcotest.(check bool) "wrapper gains the closure callee" true
    (List.mem (id "task") g.Cg.callees.(id "run"))

let test_cg_arg_span () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/sp.ml"
          "let other () = 1\n\nlet go () = run ( task 1 ) ; other ()\n";
      ]
  in
  let d = Option.get (Cg.find_def g ~module_:"Sp" ~name:"go") in
  let body = d.Cg.d_body in
  let idx t =
    let r = ref (-1) in
    Array.iteri (fun i tk -> if !r < 0 && tk.Lint.t = t then r := i) body;
    Alcotest.(check bool) ("token " ^ t ^ " present") true (!r >= 0);
    !r
  in
  (* The application span of [run] swallows the parenthesised argument and
     stops at the statement separator. *)
  Alcotest.(check int) "span ends at the semicolon" (idx ";") (Cg.arg_span body (idx "run"))

(* Lock harvest: one identity per [NAME = Mutex.create] binding, named
   by the enclosing module. *)
let test_lock_harvest () =
  let g =
    Cg.build_sources
      [
        src ~lib:"alib" "alib/st.ml"
          "let lock = Mutex.create ()\nlet s = ref 0\n\n\
           let set v = Mutex.lock lock; s := v; Mutex.unlock lock\n";
        src ~lib:"alib" "alib/rec.ml"
          "type t = { m : Mutex.t }\n\nlet make () = { m = Mutex.create () }\n\n\
           let with_m t f = Mutex.lock t.m; let r = f () in Mutex.unlock t.m; r\n";
      ]
  in
  let names = List.map (fun (n, _, _) -> n) (Lk.locks g) |> List.sort String.compare in
  Alcotest.(check (list string)) "harvested identities" [ "Rec.m"; "St.lock" ] names

let test_lock_rules_catalogue () =
  Alcotest.(check (list string)) "rule ids"
    [
      "lock-order-cycle"; "blocking-under-lock"; "lock-held-io"; "atomic-rmw"; "useless-lock";
      "lock-manifest";
    ]
    (List.map fst Lk.rules)

(* Two-lock AB/BA inversion: the classic deadlock, reported once with a
   two-chain witness naming both locks. *)
let test_lock_cycle_ab_ba () =
  let bad =
    "let a = Mutex.create ()\nlet b = Mutex.create ()\nlet x = ref 0\n\n\
     let f () = Mutex.lock a; Mutex.lock b; x := 1; Mutex.unlock b; Mutex.unlock a\n\n\
     let g () = Mutex.lock b; Mutex.lock a; x := 2; Mutex.unlock a; Mutex.unlock b\n"
  in
  let fs = lock_findings [ src ~lib:"alib" "alib/ord.ml" bad ] in
  Alcotest.(check (list string)) "only the cycle fires" [ "lock-order-cycle" ] (rule_ids fs);
  (match List.find_opt (fun f -> f.F.rule = "lock-order-cycle") fs with
  | Some f ->
      Alcotest.(check bool) "names both locks" true
        (contains_sub f.F.message "Ord.a" && contains_sub f.F.message "Ord.b")
  | None -> Alcotest.fail "no cycle finding");
  (* Same program, consistent a-then-b order everywhere: clean. *)
  let good =
    "let a = Mutex.create ()\nlet b = Mutex.create ()\nlet x = ref 0\n\n\
     let f () = Mutex.lock a; Mutex.lock b; x := 1; Mutex.unlock b; Mutex.unlock a\n\n\
     let g () = Mutex.lock a; Mutex.lock b; x := 2; Mutex.unlock b; Mutex.unlock a\n"
  in
  Alcotest.(check (list string)) "consistent order is clean" []
    (rule_ids (lock_findings [ src ~lib:"alib" "alib/ord.ml" good ]))

(* Three-lock cycle closed through a helper call: the c->a edge only
   exists interprocedurally (h holds c and calls a function that may
   acquire a). All three pairs are mutually reachable. *)
let test_lock_cycle_through_helper () =
  let fs =
    lock_findings
      [
        src ~lib:"alib" "alib/tri.ml"
          "let a = Mutex.create ()\nlet b = Mutex.create ()\nlet c = Mutex.create ()\n\
           let x = ref 0\n\n\
           let locks_a () = Mutex.lock a; x := 1; Mutex.unlock a\n\n\
           let f () = Mutex.lock a; Mutex.lock b; x := 1; Mutex.unlock b; Mutex.unlock a\n\n\
           let g () = Mutex.lock b; Mutex.lock c; x := 1; Mutex.unlock c; Mutex.unlock b\n\n\
           let h () = Mutex.lock c; locks_a (); Mutex.unlock c\n";
      ]
  in
  Alcotest.(check (list string)) "only cycles fire" [ "lock-order-cycle" ] (rule_ids fs);
  Alcotest.(check int) "all three pairs reported" 3 (List.length fs)

(* Mutex.protect nesting: inverted nesting is a cycle; two sequential
   protects of the same mutex (the refactor that replaces lock/unlock
   pairs) must NOT read as a re-acquire. *)
let test_lock_protect_nesting () =
  let bad =
    "let a = Mutex.create ()\nlet b = Mutex.create ()\nlet x = ref 0\n\n\
     let f () = Mutex.protect a (fun () -> Mutex.protect b (fun () -> x := 1))\n\n\
     let g () = Mutex.protect b (fun () -> Mutex.protect a (fun () -> x := 2))\n"
  in
  Alcotest.(check (list string)) "inverted protect nesting cycles" [ "lock-order-cycle" ]
    (rule_ids (lock_findings [ src ~lib:"alib" "alib/pn.ml" bad ]));
  let sequential =
    "let a = Mutex.create ()\nlet x = ref 0\nlet y = ref 0\n\n\
     let f () =\n  Mutex.protect a (fun () -> x := 1);\n  Mutex.protect a (fun () -> y := 2)\n"
  in
  Alcotest.(check (list string)) "sequential protects of one mutex are clean" []
    (rule_ids (lock_findings [ src ~lib:"alib" "alib/pn.ml" sequential ]))

(* OCaml mutexes are not reentrant: a re-acquire while held is reported
   as a direct deadlock. *)
let test_lock_self_reacquire () =
  let fs =
    lock_findings
      [
        src ~lib:"alib" "alib/re.ml"
          "let a = Mutex.create ()\nlet x = ref 0\n\n\
           let f () = Mutex.lock a; Mutex.lock a; x := 1; Mutex.unlock a; Mutex.unlock a\n";
      ]
  in
  Alcotest.(check (list string)) "re-acquire fires" [ "lock-order-cycle" ] (rule_ids fs);
  match fs with
  | [ f ] -> Alcotest.(check bool) "says re-acquires" true (contains_sub f.F.message "re-acquires")
  | _ -> Alcotest.fail "expected exactly one finding"

let blocking_src =
  "let jl = Mutex.create ()\n\n\
   let flush fd = Mutex.lock jl; Unix.fsync fd; Mutex.unlock jl\n"

(* Blocking primitive under a lock: warn by default, silenced by an
   io_locks manifest entry, escalated to an error on the hot path. *)
let test_lock_blocking_under_lock () =
  let fs = lock_findings [ src ~lib:"serveix" "serveix/jm.ml" blocking_src ] in
  (match fs with
  | [ f ] ->
      Alcotest.(check string) "rule" "blocking-under-lock" f.F.rule;
      Alcotest.(check bool) "warn severity" true (f.F.severity = F.Warn);
      Alcotest.(check bool) "names the primitive and the lock" true
        (contains_sub f.F.message "Unix.fsync" && contains_sub f.F.message "Jm.jl")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  Alcotest.(check (list string)) "io_locks exemption silences it" []
    (rule_ids
       (lock_findings
          ~manifest:[ ("io_locks", [ "Jm.jl" ]) ]
          [ src ~lib:"serveix" "serveix/jm.ml" blocking_src ]))

let test_lock_held_io_hot () =
  let fs =
    lock_findings
      ~manifest:[ ("hot", [ "Jm.flush" ]) ]
      [ src ~lib:"serveix" "serveix/jm.ml" blocking_src ]
  in
  match fs with
  | [ f ] ->
      Alcotest.(check string) "escalated rule" "lock-held-io" f.F.rule;
      Alcotest.(check bool) "error severity" true (f.F.severity = F.Error)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

(* Blocking reached through a wrapper: the lock is held by [locked],
   the sleep lives in the caller's inline closure. The wrapper summary
   replays the lock over the argument span. *)
let test_lock_blocking_via_wrapper () =
  let fs =
    lock_findings
      [
        src ~lib:"alib" "alib/wr.ml"
          "let m = Mutex.create ()\nlet s = ref 0\n\n\
           let locked f = Mutex.lock m; s := 1; let r = f () in Mutex.unlock m; r\n\n\
           let bad () = locked (fun () -> Unix.sleep 1)\n";
      ]
  in
  Alcotest.(check bool) "closure body scanned under the wrapper's lock" true
    (F.has_rule "blocking-under-lock" fs);
  Alcotest.(check bool) "no spurious cycle" false (F.has_rule "lock-order-cycle" fs)

(* Atomic read-modify-write discipline. *)
let test_lock_atomic_rmw () =
  let fires txt =
    F.has_rule "atomic-rmw" (lock_findings [ src ~lib:"alib" "alib/at.ml" txt ])
  in
  Alcotest.(check bool) "inline get-then-set fires" true
    (fires "let c = Atomic.make 0\n\nlet bump () = Atomic.set c (Atomic.get c + 1)\n");
  Alcotest.(check bool) "get-through-binder fires" true
    (fires
       "let c = Atomic.make 0\n\n\
        let bump () =\n  let cur = Atomic.get c in\n  Atomic.set c (cur + 1)\n");
  Alcotest.(check bool) "CAS retry loop is clean" false
    (fires
       "let c = Atomic.make 0\n\n\
        let rec bump () =\n  let cur = Atomic.get c in\n\
       \  if not (Atomic.compare_and_set c cur (cur + 1)) then bump ()\n");
  Alcotest.(check bool) "serialised under a lock is clean" false
    (fires
       "let m = Mutex.create ()\nlet c = Atomic.make 0\n\n\
        let bump () = Mutex.lock m; Atomic.set c (Atomic.get c + 1); Mutex.unlock m\n");
  Alcotest.(check bool) "Fun.protect save/restore is clean" false
    (fires
       "let c = Atomic.make 0\n\n\
        let with_saved f =\n  let saved = Atomic.get c in\n\
       \  Fun.protect ~finally:(fun () -> Atomic.set c saved) f\n")

(* A lock that guards nothing, and one that is never taken. *)
let test_lock_useless () =
  let fs =
    lock_findings
      [
        src ~lib:"alib" "alib/ul.ml"
          "let u = Mutex.create ()\n\nlet nothing () = Mutex.lock u; Mutex.unlock u\n";
      ]
  in
  (match fs with
  | [ f ] ->
      Alcotest.(check string) "rule" "useless-lock" f.F.rule;
      Alcotest.(check bool) "guards nothing" true (contains_sub f.F.message "guard nothing")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  let fs =
    lock_findings
      [ src ~lib:"alib" "alib/ul.ml" "let never = Mutex.create ()\nlet live () = 1\n" ]
  in
  (match fs with
  | [ f ] -> Alcotest.(check bool) "never acquired" true (contains_sub f.F.message "never acquired")
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs)));
  Alcotest.(check (list string)) "a guarded mutation is clean" []
    (rule_ids
       (lock_findings
          [
            src ~lib:"alib" "alib/ul.ml"
              "let m = Mutex.create ()\nlet s = ref 0\n\n\
               let set v = Mutex.lock m; s := v; Mutex.unlock m\n";
          ]))

(* Manifest validation: unknown keys, dangling lock and entrypoint
   names, and a certified-surface lock missing from the order. *)
let test_lock_manifest_errors () =
  let one_lock =
    src ~lib:"alib" "alib/mf.ml"
      "let m = Mutex.create ()\nlet s = ref 0\n\nlet set v = Mutex.lock m; s := v; Mutex.unlock m\n"
  in
  let err manifest needle =
    let fs = lock_findings ~manifest [ one_lock ] in
    match List.find_opt (fun f -> f.F.rule = "lock-manifest") fs with
    | Some f -> Alcotest.(check bool) ("mentions " ^ needle) true (contains_sub f.F.message needle)
    | None -> Alcotest.fail ("no lock-manifest finding for " ^ needle)
  in
  err [ ("bogus", []) ] "unknown manifest key";
  err [ ("order", [ "Nope.x" ]) ] "does not name a known mutex";
  err [ ("hot", [ "Nope.f" ]) ] "does not resolve";
  err [ ("surface", [ "Mf" ]) ] "missing from the declared \"order\"";
  (* A surface lock that IS in the order passes. *)
  Alcotest.(check (list string)) "surface covered by order is clean" []
    (rule_ids
       (lock_findings ~manifest:[ ("order", [ "Mf.m" ]); ("surface", [ "Mf" ]) ] [ one_lock ]))

let () =
  Alcotest.run "check"
    [
      ( "srclint",
        [
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "hashtbl-find" `Quick test_hashtbl_find;
          Alcotest.test_case "catchall-try" `Quick test_catchall_try;
          Alcotest.test_case "list-nth" `Quick test_list_nth;
          Alcotest.test_case "pragma suppression" `Quick test_pragma_suppression;
          Alcotest.test_case "locations and severity" `Quick test_locations_and_severity;
          Alcotest.test_case "rules catalogue" `Quick test_rules_catalogue;
          Alcotest.test_case "report formats" `Quick test_report_formats;
          Alcotest.test_case "lexer string edges" `Quick test_lexer_string_edges;
          Alcotest.test_case "lexer char literals" `Quick test_lexer_char_literals;
          Alcotest.test_case "lexer numbers and ops" `Quick test_lexer_numbers_and_ops;
          Alcotest.test_case "lexer attributes" `Quick test_lexer_attributes;
        ] );
      ( "flow",
        [
          Alcotest.test_case "div-unguarded" `Quick test_flow_div_unguarded;
          Alcotest.test_case "div guards" `Quick test_flow_div_guards;
          Alcotest.test_case "nan-compare" `Quick test_flow_nan_compare;
          Alcotest.test_case "magic-unit" `Quick test_flow_magic_unit;
          Alcotest.test_case "unit-relabel" `Quick test_flow_unit_relabel;
          Alcotest.test_case "pragmas and catalogue" `Quick test_flow_pragmas_and_catalogue;
          Alcotest.test_case "rule classes distinct" `Quick test_flow_rule_classes_distinct;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "graph clean" `Quick test_graph_clean;
          Alcotest.test_case "path valid" `Quick test_path_valid;
          Alcotest.test_case "path discontiguous" `Quick test_path_discontiguous;
          Alcotest.test_case "path endpoint" `Quick test_path_endpoint;
          Alcotest.test_case "path loop" `Quick test_path_loop;
          Alcotest.test_case "table coverage" `Quick test_table_coverage;
          Alcotest.test_case "table duplicate pair" `Quick test_table_duplicate_pair;
          Alcotest.test_case "table on-demand dup" `Quick test_table_ondemand_dup;
          Alcotest.test_case "table failover overlap" `Quick test_table_failover_overlap;
          Alcotest.test_case "lp model" `Quick test_lp_model;
          Alcotest.test_case "traffic matrix" `Quick test_traffic_matrix;
          Alcotest.test_case "power model" `Quick test_power_model;
          Alcotest.test_case "framework validates" `Quick test_framework_validates;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "defs and visibility" `Quick test_cg_defs;
          Alcotest.test_case "edges and witness" `Quick test_cg_edges;
          Alcotest.test_case "submodule and alias" `Quick test_cg_submodule_and_alias;
          Alcotest.test_case "@raise doc harvest" `Quick test_cg_raise_doc;
          Alcotest.test_case "attributed defs" `Quick test_cg_attributed_defs;
          Alcotest.test_case "closure arguments" `Quick test_cg_closure_args;
          Alcotest.test_case "argument spans" `Quick test_cg_arg_span;
        ] );
      ( "effect",
        [
          Alcotest.test_case "base effects" `Quick test_effect_base;
          Alcotest.test_case "sorted-fold idiom" `Quick test_effect_sorted_fold;
          Alcotest.test_case "fixpoint transitive" `Quick test_effect_fixpoint_transitive;
          Alcotest.test_case "rules on fixture" `Quick test_effect_rules_fire;
          Alcotest.test_case "nondet-export rule" `Quick test_effect_nondet_export_rule;
          Alcotest.test_case "undocumented-raise rule" `Quick test_effect_undocumented_raise_rule;
          QCheck_alcotest.to_alcotest prop_fixpoint_monotone;
        ] );
      ( "budget",
        [
          Alcotest.test_case "parse" `Quick test_budget_parse;
          Alcotest.test_case "ratchet" `Quick test_budget_ratchet;
        ] );
      ( "share",
        [
          Alcotest.test_case "roots" `Quick test_share_roots;
          Alcotest.test_case "classify" `Quick test_share_classify;
          Alcotest.test_case "unguarded-global" `Quick test_share_unguarded_global;
          Alcotest.test_case "guarded silent" `Quick test_share_guarded_silent;
          Alcotest.test_case "read-only silent" `Quick test_share_readonly_silent;
          Alcotest.test_case "shared-write-reachable" `Quick test_share_write_reachable;
          Alcotest.test_case "prng-shared" `Quick test_share_prng_rules;
          Alcotest.test_case "ambient Random" `Quick test_share_ambient_random;
          Alcotest.test_case "manifest errors" `Quick test_share_manifest_errors;
          Alcotest.test_case "manifest parse" `Quick test_share_manifest_parse;
          Alcotest.test_case "rules catalogue" `Quick test_share_rules_catalogue;
        ] );
      ( "cost",
        [
          Alcotest.test_case "lexical depths" `Quick test_cost_depths;
          Alcotest.test_case "quadratic-list-op" `Quick test_cost_quadratic_rule;
          Alcotest.test_case "rebuild-in-loop" `Quick test_cost_rebuild_rule;
          Alcotest.test_case "fixed idioms stay fixed" `Quick test_cost_fixed_idioms;
          Alcotest.test_case "alloc-in-hot-loop" `Quick test_cost_hot_rule;
          Alcotest.test_case "memo-unsafe" `Quick test_cost_memo_rule;
          Alcotest.test_case "cost-manifest" `Quick test_cost_manifest_rule;
          Alcotest.test_case "infer propagation" `Quick test_cost_infer_propagation;
          Alcotest.test_case "rules catalogue" `Quick test_cost_rules_catalogue;
        ] );
      ( "lock",
        [
          Alcotest.test_case "harvest" `Quick test_lock_harvest;
          Alcotest.test_case "rules catalogue" `Quick test_lock_rules_catalogue;
          Alcotest.test_case "ab/ba cycle" `Quick test_lock_cycle_ab_ba;
          Alcotest.test_case "cycle through helper" `Quick test_lock_cycle_through_helper;
          Alcotest.test_case "protect nesting" `Quick test_lock_protect_nesting;
          Alcotest.test_case "self re-acquire" `Quick test_lock_self_reacquire;
          Alcotest.test_case "blocking-under-lock" `Quick test_lock_blocking_under_lock;
          Alcotest.test_case "lock-held-io on hot path" `Quick test_lock_held_io_hot;
          Alcotest.test_case "blocking via wrapper" `Quick test_lock_blocking_via_wrapper;
          Alcotest.test_case "atomic-rmw" `Quick test_lock_atomic_rmw;
          Alcotest.test_case "useless-lock" `Quick test_lock_useless;
          Alcotest.test_case "manifest errors" `Quick test_lock_manifest_errors;
        ] );
      ( "doc",
        [
          Alcotest.test_case "clean docs silent" `Quick test_doc_clean;
          Alcotest.test_case "raise-malformed" `Quick test_doc_raise_malformed;
          Alcotest.test_case "doc-unknown-tag" `Quick test_doc_unknown_tag;
          Alcotest.test_case "doc-unterminated" `Quick test_doc_unterminated;
          Alcotest.test_case "plain comments exempt" `Quick test_doc_plain_comments_exempt;
          Alcotest.test_case "rules catalogue" `Quick test_doc_rules_catalogue;
        ] );
    ]
