(* Tests for the application workloads of Section 5.4: media streaming with
   play-out deadlines and the SPECweb-like web workload. *)

module G = Topo.Graph
module Path = Topo.Path

let abovenet = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet
let abovenet_power = Power.Model.cisco12000 abovenet

let streaming_config =
  {
    Netsim.Sim.te =
      { Response.Te.default_config with probe_period = Eutil.Units.seconds 0.2 };
    wake_time = 0.1;
    failure_detection = 0.1;
    idle_timeout = 5.0;
    sample_interval = 0.25;
    te_start = 0.0;
    transition_energy = 0.0;
  }

let small_scenario ?(n_clients = 8) ?(bitrate = 600e3) ~tables () =
  let g = Response.Tables.graph tables in
  let rng = Eutil.Prng.create 99 in
  let nodes = G.traffic_nodes g in
  let source = nodes.(0) in
  let clients =
    List.init n_clients (fun i ->
        let node = nodes.(1 + Eutil.Prng.int rng (Array.length nodes - 1)) in
        { Appsim.Streaming.node; join_time = 0.1 *. float_of_int i })
  in
  {
    Appsim.Streaming.source;
    bitrate;
    block_duration = 1.0;
    startup_buffer = 5.0;
    clients;
    duration = 40.0;
  }

let abovenet_tables =
  lazy
    (let pairs = Fixtures.all_pairs abovenet in
     Response.Framework.precompute
       ~config:{ Response.Framework.default with latency_beta = Some 0.25 }
       abovenet abovenet_power ~pairs)

let test_streaming_low_load_plays () =
  let tables = Lazy.force abovenet_tables in
  let scenario = small_scenario ~tables () in
  let s = Appsim.Streaming.run ~config:streaming_config ~tables ~power:abovenet_power scenario in
  Alcotest.(check int) "stats per client" (List.length scenario.Appsim.Streaming.clients)
    (List.length s.Appsim.Streaming.per_client);
  Alcotest.(check bool)
    (Printf.sprintf "median playable %.0f%%" s.Appsim.Streaming.playable.Eutil.Stats.median)
    true
    (s.Appsim.Streaming.playable.Eutil.Stats.median >= 95.0);
  Alcotest.(check bool) "saves power meanwhile" true (s.Appsim.Streaming.mean_power_percent < 95.0)

let test_streaming_overload_hurts () =
  (* Per-client bitrate above what the 100/52 Mbit/s Rocketfuel links can
     deliver even across all installed paths: play-out must degrade below the
     low-load case. *)
  let tables = Lazy.force abovenet_tables in
  let low = Appsim.Streaming.run ~config:streaming_config ~tables ~power:abovenet_power
      (small_scenario ~n_clients:6 ~tables ())
  in
  let scenario = small_scenario ~n_clients:6 ~bitrate:250e6 ~tables () in
  let s = Appsim.Streaming.run ~config:streaming_config ~tables ~power:abovenet_power scenario in
  Alcotest.(check bool)
    (Printf.sprintf "median playable %.0f%% degraded vs %.0f%%"
       s.Appsim.Streaming.playable.Eutil.Stats.median low.Appsim.Streaming.playable.Eutil.Stats.median)
    true
    (s.Appsim.Streaming.playable.Eutil.Stats.median < 90.0
    && s.Appsim.Streaming.playable.Eutil.Stats.median
       < low.Appsim.Streaming.playable.Eutil.Stats.median)

let test_streaming_boxplot_ordering () =
  let tables = Lazy.force abovenet_tables in
  let scenario = small_scenario ~tables () in
  let s = Appsim.Streaming.run ~config:streaming_config ~tables ~power:abovenet_power scenario in
  let b = s.Appsim.Streaming.playable in
  Alcotest.(check bool) "ordered" true
    (b.Eutil.Stats.min <= b.Eutil.Stats.q1
    && b.Eutil.Stats.q1 <= b.Eutil.Stats.median
    && b.Eutil.Stats.median <= b.Eutil.Stats.q3
    && b.Eutil.Stats.q3 <= b.Eutil.Stats.max)

let test_web_file_sizes_deterministic () =
  let a = Appsim.Web.file_sizes Appsim.Web.default in
  let b = Appsim.Web.file_sizes Appsim.Web.default in
  Alcotest.(check bool) "same catalogue" true (a = b);
  Alcotest.(check int) "100 files" 100 (Array.length a);
  Array.iter (fun s -> Alcotest.(check bool) "positive size" true (s > 0.0)) a

let test_web_latency_components () =
  (* On a single 1 ms 1G link, a small file's latency is dominated by RTTs +
     server time. *)
  let g = Topo.Example.line 2 in
  let p = Option.get (Routing.Dijkstra.shortest_path g ~src:0 ~dst:1 ()) in
  let cfg = { Appsim.Web.default with requests = 200 } in
  let r =
    Appsim.Web.run g ~path_of:(fun _ -> Some p) ~background_util:(fun _ -> 0.0) ~clients:[ 1 ] cfg
  in
  (* 2 RTTs = 4 ms, server 2 ms; transfer of ~30-300 KB at 1G = 0.2-2 ms. *)
  Alcotest.(check bool) (Printf.sprintf "mean %.1f ms" (1e3 *. r.Appsim.Web.mean_latency)) true
    (r.Appsim.Web.mean_latency > 5e-3 && r.Appsim.Web.mean_latency < 20e-3);
  Alcotest.(check bool) "p95 >= mean-ish" true (r.Appsim.Web.p95_latency >= r.Appsim.Web.mean_latency /. 2.0)

let test_web_longer_paths_cost_more () =
  (* The REsPoNse-lat vs InvCap comparison shape: a 3-hop path is slower than
     the 1-hop path for the same workload. *)
  let g = Topo.Example.square_with_diagonal () in
  let direct = Option.get (Routing.Dijkstra.shortest_path g ~src:0 ~dst:2 ()) in
  let detour = Option.get (Routing.Disjoint.max_disjoint g ~protect:[ direct ] ~src:0 ~dst:2 ()) in
  let cfg = { Appsim.Web.default with requests = 500 } in
  let fast = Appsim.Web.run g ~path_of:(fun _ -> Some direct) ~background_util:(fun _ -> 0.0) ~clients:[ 2 ] cfg in
  let slow = Appsim.Web.run g ~path_of:(fun _ -> Some detour) ~background_util:(fun _ -> 0.0) ~clients:[ 2 ] cfg in
  let increase = Appsim.Web.compare_latency ~baseline:fast ~treatment:slow in
  Alcotest.(check bool) (Printf.sprintf "increase %.0f%%" increase) true (increase > 0.0)

let test_web_background_util_slows_transfer () =
  let g = Topo.Example.line 2 in
  let p = Option.get (Routing.Dijkstra.shortest_path g ~src:0 ~dst:1 ()) in
  let cfg = { Appsim.Web.default with requests = 300; median_size = 5e6 } in
  let free = Appsim.Web.run g ~path_of:(fun _ -> Some p) ~background_util:(fun _ -> 0.0) ~clients:[ 1 ] cfg in
  let busy = Appsim.Web.run g ~path_of:(fun _ -> Some p) ~background_util:(fun _ -> 0.8) ~clients:[ 1 ] cfg in
  Alcotest.(check bool) "busy slower" true
    (busy.Appsim.Web.mean_latency > 2.0 *. free.Appsim.Web.mean_latency)

let () =
  Alcotest.run "appsim"
    [
      ( "streaming",
        [
          Alcotest.test_case "low load plays" `Slow test_streaming_low_load_plays;
          Alcotest.test_case "overload hurts" `Slow test_streaming_overload_hurts;
          Alcotest.test_case "boxplot ordering" `Slow test_streaming_boxplot_ordering;
        ] );
      ( "web",
        [
          Alcotest.test_case "deterministic catalogue" `Quick test_web_file_sizes_deterministic;
          Alcotest.test_case "latency components" `Quick test_web_latency_components;
          Alcotest.test_case "longer paths cost more" `Quick test_web_longer_paths_cost_more;
          Alcotest.test_case "background utilisation" `Quick test_web_background_util_slows_transfer;
        ] );
    ]
