(* Unit and property tests for the simplex / branch-and-bound substrate. *)

let check_float = Alcotest.(check (float 1e-6))

let solve_simplex n_vars objective rows = Lp.Simplex.solve { Lp.Simplex.n_vars; objective; rows }

let test_basic_max () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig):
     optimum at (2, 6) with value 36; we minimise the negation. *)
  match
    solve_simplex 2 [| -3.0; -5.0 |]
      [
        ([| 1.0; 0.0 |], Lp.Simplex.Le, 4.0);
        ([| 0.0; 2.0 |], Lp.Simplex.Le, 12.0);
        ([| 3.0; 2.0 |], Lp.Simplex.Le, 18.0);
      ]
  with
  | Lp.Simplex.Optimal { x; objective } ->
      check_float "objective" (-36.0) objective;
      check_float "x" 2.0 x.(0);
      check_float "y" 6.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_equality_and_ge () =
  (* min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> x = 8, y = 2, obj = 12. *)
  match
    solve_simplex 2 [| 1.0; 2.0 |]
      [
        ([| 1.0; 1.0 |], Lp.Simplex.Eq, 10.0);
        ([| 1.0; 0.0 |], Lp.Simplex.Ge, 3.0);
        ([| 0.0; 1.0 |], Lp.Simplex.Ge, 2.0);
      ]
  with
  | Lp.Simplex.Optimal { x; objective } ->
      check_float "objective" 12.0 objective;
      check_float "x" 8.0 x.(0);
      check_float "y" 2.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_infeasible () =
  match
    solve_simplex 1 [| 1.0 |]
      [ ([| 1.0 |], Lp.Simplex.Le, 1.0); ([| 1.0 |], Lp.Simplex.Ge, 2.0) ]
  with
  | Lp.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  match solve_simplex 1 [| -1.0 |] [ ([| -1.0 |], Lp.Simplex.Le, 0.0) ] with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs () =
  (* min x s.t. -x <= -5  (i.e. x >= 5). *)
  match solve_simplex 1 [| 1.0 |] [ ([| -1.0 |], Lp.Simplex.Le, -5.0) ] with
  | Lp.Simplex.Optimal { x; objective } ->
      check_float "objective" 5.0 objective;
      check_float "x" 5.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_degenerate () =
  (* A degenerate problem that cycles under naive pivoting (Beale's example
     requires specific pivoting; here we just check termination/correctness
     of a degenerate vertex). min -x - y, x + y <= 1, x <= 1, y <= 1. *)
  match
    solve_simplex 2 [| -1.0; -1.0 |]
      [
        ([| 1.0; 1.0 |], Lp.Simplex.Le, 1.0);
        ([| 1.0; 0.0 |], Lp.Simplex.Le, 1.0);
        ([| 0.0; 1.0 |], Lp.Simplex.Le, 1.0);
      ]
  with
  | Lp.Simplex.Optimal { objective; _ } -> check_float "objective" (-1.0) objective
  | _ -> Alcotest.fail "expected optimal"

let test_redundant_equalities () =
  (* x + y = 4 stated twice: the redundant artificial must not break phase 2. *)
  match
    solve_simplex 2 [| 1.0; 3.0 |]
      [ ([| 1.0; 1.0 |], Lp.Simplex.Eq, 4.0); ([| 2.0; 2.0 |], Lp.Simplex.Eq, 8.0) ]
  with
  | Lp.Simplex.Optimal { x; objective } ->
      check_float "objective" 4.0 objective;
      check_float "x" 4.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_milp_knapsack () =
  (* max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binaries -> a=1, c=1 (17)
     vs b+c = 20 ... check: b+c weight 6 value 20 -> optimal 20. *)
  match
    Lp.Milp.solve
      {
        Lp.Milp.lp =
          {
            Lp.Simplex.n_vars = 3;
            objective = [| -10.0; -13.0; -7.0 |];
            rows =
              [
                ([| 3.0; 4.0; 2.0 |], Lp.Simplex.Le, 6.0);
                ([| 1.0; 0.0; 0.0 |], Lp.Simplex.Le, 1.0);
                ([| 0.0; 1.0; 0.0 |], Lp.Simplex.Le, 1.0);
                ([| 0.0; 0.0; 1.0 |], Lp.Simplex.Le, 1.0);
              ];
          };
        integer = [| true; true; true |];
      }
  with
  | Lp.Milp.Optimal { x; objective } ->
      check_float "objective" (-20.0) objective;
      check_float "b" 1.0 x.(1);
      check_float "c" 1.0 x.(2)
  | _ -> Alcotest.fail "expected optimal"

let test_milp_integer_rounding_not_enough () =
  (* max x + y s.t. 2x + 2y <= 3, integers: LP optimum 1.5, MILP optimum 1. *)
  match
    Lp.Milp.solve
      {
        Lp.Milp.lp =
          {
            Lp.Simplex.n_vars = 2;
            objective = [| -1.0; -1.0 |];
            rows = [ ([| 2.0; 2.0 |], Lp.Simplex.Le, 3.0) ];
          };
        integer = [| true; true |];
      }
  with
  | Lp.Milp.Optimal { objective; _ } -> check_float "objective" (-1.0) objective
  | _ -> Alcotest.fail "expected optimal"

let test_model_layer () =
  let m = Lp.Model.create () in
  let x = Lp.Model.var m ~ub:10.0 "x" in
  let y = Lp.Model.var m "y" in
  Lp.Model.constr m [ (1.0, x); (1.0, y) ] Lp.Simplex.Ge 6.0;
  Lp.Model.constr m [ (1.0, y) ] Lp.Simplex.Le 2.0;
  Lp.Model.minimize m [ (2.0, x); (1.0, y) ];
  match Lp.Model.solve m with
  | `Optimal s ->
      (* x + y >= 6, y <= 2 -> y = 2, x = 4, obj = 10. *)
      check_float "objective" 10.0 (Lp.Model.objective s);
      check_float "x" 4.0 (Lp.Model.value s x);
      check_float "y" 2.0 (Lp.Model.value s y)
  | _ -> Alcotest.fail "expected optimal"

let test_model_binary () =
  let m = Lp.Model.create () in
  let a = Lp.Model.binary m "a" in
  let b = Lp.Model.binary m "b" in
  (* Cover constraint: a + b >= 1, cost 3a + 2b -> pick b. *)
  Lp.Model.constr m [ (1.0, a); (1.0, b) ] Lp.Simplex.Ge 1.0;
  Lp.Model.minimize m [ (3.0, a); (2.0, b) ];
  match Lp.Model.solve m with
  | `Optimal s ->
      check_float "objective" 2.0 (Lp.Model.objective s);
      check_float "b" 1.0 (Lp.Model.value s b)
  | _ -> Alcotest.fail "expected optimal"

(* Property: for random feasible bounded LPs built from box constraints and a
   random objective, the simplex optimum matches the best box corner. *)
let prop_box_lp =
  QCheck.Test.make ~name:"simplex matches best corner on box LPs" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 4) (pair (float_bound_exclusive 10.0) (float_bound_exclusive 10.0)))
        (list_of_size Gen.(2 -- 4) (float_range (-5.0) 5.0)))
    (fun (bounds, costs) ->
      let n = min (List.length bounds) (List.length costs) in
      QCheck.assume (n >= 2);
      let bounds = Array.of_list (List.filteri (fun i _ -> i < n) bounds) in
      let costs = Array.of_list (List.filteri (fun i _ -> i < n) costs) in
      let rows =
        List.init n (fun i ->
            let row = Array.make n 0.0 in
            row.(i) <- 1.0;
            let _, hi = bounds.(i) in
            (row, Lp.Simplex.Le, 1.0 +. hi))
      in
      match Lp.Simplex.solve { Lp.Simplex.n_vars = n; objective = costs; rows } with
      | Lp.Simplex.Optimal { objective; _ } ->
          (* With x >= 0 and x_i <= ub_i, optimum is sum over negative costs
             of cost * ub. *)
          let expected = ref 0.0 in
          Array.iteri
            (fun i c ->
              let _, hi = bounds.(i) in
              if c < 0.0 then expected := !expected +. (c *. (1.0 +. hi)))
            costs;
          abs_float (objective -. !expected) < 1e-6
      | _ -> false)

(* -------------------- warm starts -------------------- *)

let outcomes_match a b =
  match (a, b) with
  | Lp.Simplex.Optimal { objective = oa; _ }, Lp.Simplex.Optimal { objective = ob; _ } ->
      abs_float (oa -. ob) < 1e-6
  | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible -> true
  | Lp.Simplex.Unbounded, Lp.Simplex.Unbounded -> true
  | _ -> false

let dantzig =
  {
    Lp.Simplex.n_vars = 2;
    objective = [| -3.0; -5.0 |];
    rows =
      [
        ([| 1.0; 0.0 |], Lp.Simplex.Le, 4.0);
        ([| 0.0; 2.0 |], Lp.Simplex.Le, 12.0);
        ([| 3.0; 2.0 |], Lp.Simplex.Le, 18.0);
      ];
  }

let test_warm_same_problem () =
  let cold, basis = Lp.Simplex.solve_with_basis dantzig in
  let basis = match basis with Some b -> b | None -> Alcotest.fail "no basis returned" in
  let warm, basis' = Lp.Simplex.solve_with_basis ~hint:basis dantzig in
  Alcotest.(check bool) "warm equals cold" true (outcomes_match cold warm);
  Alcotest.(check bool) "warm re-solve returns a basis" true (basis' <> None)

let test_warm_appended_row () =
  (* Rows are appended at the end, so the parent basis stays layout-valid
     (slack indices shift but structural ones do not — the prefix-stability
     contract of the mli). *)
  let _, basis = Lp.Simplex.solve_with_basis dantzig in
  let basis = match basis with Some b -> b | None -> Alcotest.fail "no basis" in
  let child =
    { dantzig with Lp.Simplex.rows = dantzig.rows @ [ ([| 1.0; 1.0 |], Lp.Simplex.Le, 5.0) ] }
  in
  let warm, _ = Lp.Simplex.solve_with_basis ~hint:basis child in
  let cold = Lp.Simplex.solve child in
  Alcotest.(check bool) "warm child equals cold child" true (outcomes_match cold warm)

let test_warm_infeasible_child () =
  let _, basis = Lp.Simplex.solve_with_basis dantzig in
  let basis = match basis with Some b -> b | None -> Alcotest.fail "no basis" in
  let child =
    {
      dantzig with
      Lp.Simplex.rows = dantzig.rows @ [ ([| 1.0; 0.0 |], Lp.Simplex.Ge, 100.0) ]
    }
  in
  let warm, warm_basis = Lp.Simplex.solve_with_basis ~hint:basis child in
  Alcotest.(check bool) "warm detects infeasibility" true
    (outcomes_match warm Lp.Simplex.Infeasible);
  Alcotest.(check bool) "no basis on non-optimal" true (warm_basis = None)

let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm start matches cold solve after rhs tightening" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 4) (float_bound_exclusive 10.0))
        (pair (list_of_size Gen.(2 -- 4) (float_range (-5.0) 5.0)) (float_range 0.1 1.0)))
    (fun (ubs, (costs, shrink)) ->
      let n = min (List.length ubs) (List.length costs) in
      QCheck.assume (n >= 2);
      let ubs = Array.of_list (List.filteri (fun i _ -> i < n) ubs) in
      let costs = Array.of_list (List.filteri (fun i _ -> i < n) costs) in
      let rows_of scale =
        List.init n (fun i ->
            let row = Array.make n 0.0 in
            row.(i) <- 1.0;
            (row, Lp.Simplex.Le, scale *. (1.0 +. ubs.(i))))
      in
      let parent = { Lp.Simplex.n_vars = n; objective = costs; rows = rows_of 1.0 } in
      match Lp.Simplex.solve_with_basis parent with
      | Lp.Simplex.Optimal _, Some basis ->
          let child = { parent with Lp.Simplex.rows = rows_of shrink } in
          let warm, _ = Lp.Simplex.solve_with_basis ~hint:basis child in
          outcomes_match warm (Lp.Simplex.solve child)
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "dantzig max" `Quick test_basic_max;
          Alcotest.test_case "equality and ge" `Quick test_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          QCheck_alcotest.to_alcotest prop_box_lp;
        ] );
      ( "warm",
        [
          Alcotest.test_case "same problem" `Quick test_warm_same_problem;
          Alcotest.test_case "appended row" `Quick test_warm_appended_row;
          Alcotest.test_case "infeasible child" `Quick test_warm_infeasible_child;
          QCheck_alcotest.to_alcotest prop_warm_matches_cold;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "rounding is not enough" `Quick test_milp_integer_rounding_not_enough;
        ] );
      ( "model",
        [
          Alcotest.test_case "continuous model" `Quick test_model_layer;
          Alcotest.test_case "binary cover" `Quick test_model_binary;
        ] );
    ]
