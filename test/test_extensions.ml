(* Tests for the extension modules: Suurballe disjoint pairs, the flattened
   butterfly topology, exports, peak-duration analysis, sleep states, and
   deployment feasibility. *)

module G = Topo.Graph
module Path = Topo.Path
module Matrix = Traffic.Matrix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* -------------------- Suurballe -------------------- *)

let test_suurballe_square () =
  let g = Topo.Example.square_with_diagonal () in
  match Routing.Suurballe.disjoint_pair g ~src:0 ~dst:2 () with
  | Some (p1, p2) ->
      Alcotest.(check bool) "disjoint" false (Path.shares_link g p1 p2);
      Alcotest.(check bool) "sorted by weight" true (Path.latency g p1 <= Path.latency g p2);
      (* Optimal pair: diagonal (1 ms) + one two-hop side (2 ms). *)
      Alcotest.(check (float 1e-9)) "total weight" 3e-3 (Path.latency g p1 +. Path.latency g p2)
  | None -> Alcotest.fail "pair exists"

let test_suurballe_none_on_tree () =
  let g = Topo.Example.line 3 in
  Alcotest.(check bool) "no disjoint pair on a line" true
    (Routing.Suurballe.disjoint_pair g ~src:0 ~dst:2 () = None)

let test_suurballe_beats_greedy_trap () =
  (* The classic trap: the shortest path uses the middle chord; removing it
     leaves no disjoint alternative for the greedy, but a disjoint pair
     exists. Topology: s-a-t (fast via chord a-t), s-b-t, plus a-b. *)
  let b = G.Builder.create () in
  let s = G.Builder.add_node b "s" in
  let a = G.Builder.add_node b "a" in
  let bb = G.Builder.add_node b "b" in
  let t = G.Builder.add_node b "t" in
  let link ?(lat = 1e-3) x y = ignore (G.Builder.add_link b ~capacity:1e9 ~latency:lat x y) in
  link s a ~lat:1e-3;
  link a bb ~lat:0.1e-3;
  link bb t ~lat:1e-3;
  link s bb ~lat:5e-3;
  link a t ~lat:5e-3;
  let g = G.Builder.build b in
  (* Shortest s-t path is s-a-b-t (2.1 ms); removing its links leaves s-b
     (5) + ... b's links used... Suurballe still finds the pair
     (s-a-t, s-b-t). *)
  match Routing.Suurballe.disjoint_pair g ~src:s ~dst:t () with
  | Some (p1, p2) ->
      Alcotest.(check bool) "disjoint" false (Path.shares_link g p1 p2);
      Alcotest.(check (float 1e-9)) "optimal total" 12e-3
        (Path.latency g p1 +. Path.latency g p2)
  | None -> Alcotest.fail "pair exists"

let prop_suurballe_disjoint_and_optimal_vs_bruteforce =
  QCheck.Test.make ~name:"suurballe disjoint on random graphs" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Eutil.Prng.create seed in
      let n = 6 in
      let b = G.Builder.create () in
      let nodes = Array.init n (fun i -> G.Builder.add_node b (Printf.sprintf "v%d" i)) in
      for i = 1 to n - 1 do
        let j = Eutil.Prng.int rng i in
        ignore (G.Builder.add_link b ~capacity:1e9 ~latency:(0.001 +. Eutil.Prng.float rng) nodes.(i) nodes.(j))
      done;
      for _ = 1 to 5 do
        let i = Eutil.Prng.int rng n and j = Eutil.Prng.int rng n in
        if i <> j then
          try ignore (G.Builder.add_link b ~capacity:1e9 ~latency:(0.001 +. Eutil.Prng.float rng) nodes.(i) nodes.(j))
          with Invalid_argument _ -> ()
      done;
      let g = G.Builder.build b in
      match Routing.Suurballe.disjoint_pair g ~src:0 ~dst:(n - 1) () with
      | None -> true
      | Some (p1, p2) ->
          (not (Path.shares_link g p1 p2))
          && p1.Path.src = 0 && p1.Path.dst = n - 1
          && p2.Path.src = 0 && p2.Path.dst = n - 1)

(* -------------------- Butterfly -------------------- *)

let test_butterfly_structure () =
  let bf = Topo.Butterfly.make 4 in
  let g = bf.Topo.Butterfly.graph in
  (* 16 routers + 32 hosts; links: 32 host + 2 * 4 rows/cols * C(4,2)=6. *)
  Alcotest.(check int) "nodes" 48 (G.node_count g);
  Alcotest.(check int) "links" (32 + (2 * 4 * 6)) (G.link_count g);
  (* Every router reaches every other in at most 2 router hops. *)
  let r0 = bf.Topo.Butterfly.routers.(0) in
  let res = Routing.Dijkstra.run g ~weight:(fun _ -> 1.0) ~src:r0 () in
  Array.iter
    (fun r -> Alcotest.(check bool) "diameter 2" true (res.Routing.Dijkstra.dist.(r) <= 2.0))
    bf.Topo.Butterfly.routers

let test_butterfly_tables () =
  (* Only six of the sixteen routers host active servers: the rest can power
     off entirely once REsPoNse consolidates their transit away. *)
  let bf = Topo.Butterfly.make 4 ~concentration:1 in
  let g = bf.Topo.Butterfly.graph in
  let power = Power.Model.commodity_dc g in
  let hosts =
    Array.to_list (Array.sub bf.Topo.Butterfly.hosts 0 6)
  in
  let pairs =
    List.concat_map (fun o -> List.filter_map (fun d -> if o <> d then Some (o, d) else None) hosts) hosts
  in
  let tables = Response.Framework.precompute g power ~pairs in
  Alcotest.(check int) "all pairs installed" (List.length pairs)
    (List.length (Response.Tables.pairs tables));
  let tm = Traffic.Matrix.uniform (G.node_count g) ~pairs ~demand:5e7 in
  let e = Response.Framework.evaluate tables power tm in
  Alcotest.(check bool)
    (Printf.sprintf "saves power (%.1f%%)" e.Response.Framework.power_percent)
    true
    (e.Response.Framework.power_percent < 70.0)

(* -------------------- Export -------------------- *)

let test_dot_export () =
  let g = Topo.Example.triangle () in
  let dot = Topo.Export.to_dot g in
  Alcotest.(check bool) "graph header" true (String.length dot > 0);
  Alcotest.(check bool) "mentions nodes" true
    (contains dot "n0");
  (* Sleeping links are dashed. *)
  let st = Topo.State.all_on g in
  Topo.State.set_link g st 0 false;
  let dot' = Topo.Export.to_dot ~state:st g in
  Alcotest.(check bool) "dashed sleeping link" true
    (contains dot' "dashed")

let test_csv_export () =
  let g = Topo.Geant.make () in
  let csv = Topo.Export.to_csv g in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one line per link" (1 + G.link_count g) (List.length lines)

let test_capacity_summary () =
  let g = Topo.Geant.make () in
  match Topo.Export.capacity_summary g with
  | (top_cap, top_n) :: _ ->
      Alcotest.(check (float 1.0)) "10G first" 10e9 top_cap;
      Alcotest.(check int) "sixteen 10G links" 16 top_n
  | [] -> Alcotest.fail "empty summary"

(* -------------------- Peaks -------------------- *)

let synthetic_trace volumes =
  let tms =
    Array.map
      (fun v ->
        let m = Matrix.create 2 in
        if v > 0.0 then Matrix.set m 0 1 v;
        m)
      volumes
  in
  Traffic.Trace.make ~interval:900.0 tms

let test_peak_episodes () =
  let tr = synthetic_trace [| 1.0; 9.0; 10.0; 2.0; 9.5; 1.0 |] in
  (* threshold 0.9 -> bar 9.0: two episodes, 2 and 1 intervals long. *)
  let eps = Traffic.Peaks.peak_episodes tr ~threshold:0.9 in
  Alcotest.(check int) "episodes" 2 (List.length eps);
  (match eps with
  | [ e1; e2 ] ->
      Alcotest.(check (float 1e-9)) "first duration" 1800.0 e1.Traffic.Peaks.duration;
      Alcotest.(check (float 1e-9)) "first start" 900.0 e1.Traffic.Peaks.start;
      Alcotest.(check (float 1e-9)) "second duration" 900.0 e2.Traffic.Peaks.duration;
      Alcotest.(check (float 1e-9)) "peak volume" 10.0 e1.Traffic.Peaks.peak_volume
  | _ -> Alcotest.fail "episode shape");
  Alcotest.(check (float 1e-9)) "mean" 1350.0 (Traffic.Peaks.mean_peak_duration tr ~threshold:0.9);
  Alcotest.(check (float 1e-9)) "longest" 1800.0 (Traffic.Peaks.longest_peak tr ~threshold:0.9);
  Alcotest.(check (float 1e-9)) "fraction" 0.5
    (Traffic.Peaks.fraction_of_time_in_peak tr ~threshold:0.9)

let test_peak_trailing_episode () =
  let tr = synthetic_trace [| 1.0; 10.0; 10.0 |] in
  match Traffic.Peaks.peak_episodes tr ~threshold:0.9 with
  | [ e ] -> Alcotest.(check (float 1e-9)) "open-ended episode closed" 1800.0 e.Traffic.Peaks.duration
  | _ -> Alcotest.fail "one episode"

let test_geant_like_peaks_short () =
  (* The paper's observation: average peak duration is under ~2 hours. *)
  let g = Topo.Geant.make () in
  let tr = Traffic.Synth.geant_like g ~days:5 () in
  let mean = Traffic.Peaks.mean_peak_duration tr ~threshold:0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "mean peak %.1f h < 3 h" (mean /. 3600.0))
    true
    (mean > 0.0 && mean < 3.0 *. 3600.0)

(* -------------------- Sleep states -------------------- *)

let test_breakeven_ordering () =
  Alcotest.(check bool) "deeper states need longer gaps" true
    (Power.Sleep.breakeven_gap Power.Sleep.lpi < Power.Sleep.breakeven_gap Power.Sleep.nap
    && Power.Sleep.breakeven_gap Power.Sleep.nap < Power.Sleep.breakeven_gap Power.Sleep.deep)

let test_gaps_of_busy () =
  let gaps = Power.Sleep.gaps_of_busy ~busy:[ (1.0, 2.0); (4.0, 5.0) ] ~horizon:10.0 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "gaps" [ (0.0, 1.0); (2.0, 4.0); (5.0, 10.0) ] gaps;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "no busy = one gap" [ (0.0, 10.0) ]
    (Power.Sleep.gaps_of_busy ~busy:[] ~horizon:10.0)

let test_energy_bounds () =
  let module U = Eutil.Units in
  let energy ~states =
    U.to_float
      (Power.Sleep.energy ~active_power:(U.watts 100.0) ~states ~busy:[ (0.0, 3.0) ]
         ~horizon:10.0)
  in
  let on = energy ~states:[] in
  Alcotest.(check (float 1e-6)) "always on" 1000.0 on;
  let slept = energy ~states:[ Power.Sleep.nap ] in
  Alcotest.(check bool) "sleeping saves" true (slept < on);
  (* Energy is never below the deep-sleep floor. *)
  let floor = (3.0 +. (7.0 *. 0.02)) *. 100.0 in
  let deep = energy ~states:[ Power.Sleep.deep ] in
  Alcotest.(check bool) "above physical floor" true (deep >= floor -. 1e-6)

let test_short_gaps_stay_awake () =
  (* Gaps shorter than the break-even must not enter the state: energy equals
     always-on. *)
  let module U = Eutil.Units in
  let busy = List.init 50 (fun i -> (float_of_int i *. 0.2, (float_of_int i *. 0.2) +. 0.19)) in
  let energy ~states =
    U.to_float (Power.Sleep.energy ~active_power:(U.watts 10.0) ~states ~busy ~horizon:10.0)
  in
  let on = energy ~states:[] in
  let with_deep = energy ~states:[ Power.Sleep.deep ] in
  Alcotest.(check (float 1e-6)) "deep useless for 10 ms gaps" on with_deep;
  (* But LPI (microsecond wake) exploits them. *)
  let with_lpi = energy ~states:[ Power.Sleep.lpi ] in
  Alcotest.(check bool) "lpi helps" true (with_lpi < on)

let test_consolidation_lengthens_gaps () =
  (* The REsPoNse synergy: the same utilisation in longer bursts (traffic
     consolidated elsewhere most of the time) allows deeper states. *)
  let module U = Eutil.Units in
  let u = U.ratio 0.3 in
  let fine = Power.Sleep.periodic_busy ~utilisation:u ~period:0.01 ~horizon:100.0 in
  let coarse = Power.Sleep.periodic_busy ~utilisation:u ~period:60.0 ~horizon:100.0 in
  let states = [ Power.Sleep.nap; Power.Sleep.deep ] in
  let e_fine =
    U.to_float (Power.Sleep.energy ~active_power:(U.watts 100.0) ~states ~busy:fine ~horizon:100.0)
  in
  let e_coarse =
    U.to_float
      (Power.Sleep.energy ~active_power:(U.watts 100.0) ~states ~busy:coarse ~horizon:100.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "longer gaps save more (%.0f < %.0f)" e_coarse e_fine)
    true (e_coarse < e_fine)

(* -------------------- Deploy -------------------- *)

let abovenet_tables =
  lazy
    (let g = Topo.Rocketfuel.make Topo.Rocketfuel.abovenet in
     let power = Power.Model.cisco12000 g in
     (g, Response.Framework.precompute g power ~pairs:(Fixtures.all_pairs g)))

let test_tunnel_stats () =
  let _, tables = Lazy.force abovenet_tables in
  let stats = Response.Deploy.tunnel_stats tables in
  (* 22 PoPs, 21 destinations each, up to 3 paths: at most 63 tunnels. *)
  Alcotest.(check bool)
    (Printf.sprintf "max per node %d" stats.Response.Deploy.max_per_node)
    true
    (stats.Response.Deploy.max_per_node <= 63 && stats.Response.Deploy.max_per_node >= 21);
  Alcotest.(check bool) "fits 600-tunnel routers" true (Response.Deploy.fits_mpls tables);
  Alcotest.(check bool) "tight limit fails" false
    (Response.Deploy.fits_mpls ~tunnel_limit:10 tables)

let test_restrict_tables () =
  let _, tables = Lazy.force abovenet_tables in
  let two = Response.Deploy.restrict tables ~max_tables:2 in
  Alcotest.(check int) "dual topology routing" 2 (Response.Tables.n_tables two);
  (* Always-on is always kept; the second slot prefers the failover when the
     original entry had one. *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "within budget" true
        (Array.length (Response.Tables.paths e) <= 2);
      let original =
        Option.get (Response.Tables.find tables e.Response.Tables.origin e.Response.Tables.dest)
      in
      if original.Response.Tables.failover <> None then
        Alcotest.(check bool) "failover kept when present" true
          (e.Response.Tables.failover <> None))
    (Response.Tables.entries two);
  let one = Response.Deploy.restrict tables ~max_tables:1 in
  Alcotest.(check int) "single table" 1 (Response.Tables.n_tables one)

let test_failure_coverage () =
  let g, tables = Lazy.force abovenet_tables in
  let coverage = Response.Deploy.single_failure_coverage tables in
  Alcotest.(check bool)
    (Printf.sprintf "single failures mostly covered (%.2f)" coverage)
    true (coverage > 0.9);
  (* No failures: full coverage. *)
  Alcotest.(check (float 1e-9)) "no failure" 1.0
    (Response.Deploy.coverage_after_failures tables ~failed:[]);
  (* Failing everything disconnects everything. *)
  let all = List.init (G.link_count g) (fun l -> l) in
  Alcotest.(check (float 1e-9)) "all failed" 0.0
    (Response.Deploy.coverage_after_failures tables ~failed:all);
  Alcotest.(check bool) "recompute warranted after massacre" true
    (Response.Deploy.recompute_warranted tables ~failed:all)

let test_restricted_tables_less_robust () =
  let _, tables = Lazy.force abovenet_tables in
  let restricted = Response.Deploy.restrict tables ~max_tables:1 in
  Alcotest.(check bool) "fewer tables, less robustness" true
    (Response.Deploy.single_failure_coverage restricted
    <= Response.Deploy.single_failure_coverage tables)


(* -------------------- EATe baseline -------------------- *)

let test_eate_consolidates () =
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:8 ~fraction:0.6 in
  let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps 6e9) () in
  let r = Response.Eate.run g power tm in
  Alcotest.(check bool) (Printf.sprintf "saves power (%.1f%%)" r.Response.Eate.power_percent)
    true (r.Response.Eate.power_percent < 100.0);
  Alcotest.(check bool) "respects threshold" true (r.Response.Eate.max_utilization <= 0.9 +. 1e-9);
  Alcotest.(check bool) "converges" true (r.Response.Eate.rounds <= 50);
  (* Deterministic. *)
  let r2 = Response.Eate.run g power tm in
  Alcotest.(check (float 1e-9)) "deterministic" r.Response.Eate.power_percent r2.Response.Eate.power_percent

let test_eate_vs_response () =
  (* EATe aggregates online over k-shortest paths; REsPoNse's precomputed
     energy-critical paths should save at least as much at low load. *)
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:8 ~fraction:0.6 in
  let tm = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.bps 4e9) () in
  let eate = Response.Eate.run g power tm in
  let tables = Response.Framework.precompute g power ~pairs in
  let rep = Response.Framework.evaluate tables power tm in
  Alcotest.(check bool)
    (Printf.sprintf "REsPoNse %.1f%% <= EATe %.1f%% + 10" rep.Response.Framework.power_percent
       eate.Response.Eate.power_percent)
    true
    (rep.Response.Framework.power_percent <= eate.Response.Eate.power_percent +. 10.0)

(* -------------------- Trace I/O -------------------- *)

let test_trace_roundtrip () =
  let g = Topo.Geant.make () in
  let trace = Traffic.Synth.geant_like g ~days:1 () in
  let csv = Traffic.Trace_io.to_csv trace in
  let back = Traffic.Trace_io.of_csv ~n:(G.node_count g) csv in
  Alcotest.(check int) "length" (Traffic.Trace.length trace) (Traffic.Trace.length back);
  Alcotest.(check (float 1e-6)) "interval" trace.Traffic.Trace.interval back.Traffic.Trace.interval;
  (* Demands survive within printf precision. *)
  let ok = ref true in
  Traffic.Trace.iter trace ~f:(fun i _ tm ->
      Matrix.iter_flows tm ~f:(fun o d v ->
          if abs_float (Matrix.get (Traffic.Trace.at back i) o d -. v) > 0.01 then ok := false));
  Alcotest.(check bool) "demands preserved" true !ok

let test_trace_io_rejects_garbage () =
  Alcotest.(check bool) "empty" true
    (try ignore (Traffic.Trace_io.of_csv ~n:3 ""); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad header" true
    (try ignore (Traffic.Trace_io.of_csv ~n:3 "hello\n0,0,1,5"); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "node out of range" true
    (try ignore (Traffic.Trace_io.of_csv ~n:2 "interval,300\n0,0,5,1.0"); false
     with Invalid_argument _ -> true)

let test_trace_file_roundtrip () =
  let g = Topo.Example.triangle () in
  let m = Matrix.create 3 in
  Matrix.set m 0 1 123.0;
  let trace = Traffic.Trace.make ~interval:60.0 [| m; Matrix.create 3 |] in
  let path = Filename.temp_file "trace" ".csv" in
  Traffic.Trace_io.save trace path;
  let back = Traffic.Trace_io.load ~n:(G.node_count g) path in
  Sys.remove path;
  Alcotest.(check (float 1e-6)) "value" 123.0 (Matrix.get (Traffic.Trace.at back 0) 0 1)

let () =
  Alcotest.run "extensions"
    [
      ( "suurballe",
        [
          Alcotest.test_case "square" `Quick test_suurballe_square;
          Alcotest.test_case "no pair on a tree" `Quick test_suurballe_none_on_tree;
          Alcotest.test_case "beats the greedy trap" `Quick test_suurballe_beats_greedy_trap;
          QCheck_alcotest.to_alcotest prop_suurballe_disjoint_and_optimal_vs_bruteforce;
        ] );
      ( "butterfly",
        [
          Alcotest.test_case "structure" `Quick test_butterfly_structure;
          Alcotest.test_case "tables" `Quick test_butterfly_tables;
        ] );
      ( "export",
        [
          Alcotest.test_case "dot" `Quick test_dot_export;
          Alcotest.test_case "csv" `Quick test_csv_export;
          Alcotest.test_case "capacity summary" `Quick test_capacity_summary;
        ] );
      ( "peaks",
        [
          Alcotest.test_case "episodes" `Quick test_peak_episodes;
          Alcotest.test_case "trailing episode" `Quick test_peak_trailing_episode;
          Alcotest.test_case "geant-like peaks short" `Quick test_geant_like_peaks_short;
        ] );
      ( "sleep",
        [
          Alcotest.test_case "breakeven ordering" `Quick test_breakeven_ordering;
          Alcotest.test_case "gaps of busy" `Quick test_gaps_of_busy;
          Alcotest.test_case "energy bounds" `Quick test_energy_bounds;
          Alcotest.test_case "short gaps stay awake" `Quick test_short_gaps_stay_awake;
          Alcotest.test_case "consolidation lengthens gaps" `Quick test_consolidation_lengthens_gaps;
        ] );
      ( "eate",
        [
          Alcotest.test_case "consolidates" `Quick test_eate_consolidates;
          Alcotest.test_case "vs response" `Quick test_eate_vs_response;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_io_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
        ] );
      ( "deploy",
        [
          Alcotest.test_case "tunnel stats" `Quick test_tunnel_stats;
          Alcotest.test_case "restrict" `Quick test_restrict_tables;
          Alcotest.test_case "failure coverage" `Quick test_failure_coverage;
          Alcotest.test_case "restriction costs robustness" `Quick test_restricted_tables_less_robust;
        ] );
    ]
