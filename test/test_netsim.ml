(* Tests for the discrete-event network simulator: rate allocation, sleeping,
   wake-up latency, failure handling and the REsPoNseTE loop end-to-end. *)

module G = Topo.Graph
module Sim = Netsim.Sim

let fig7_config =
  {
    Sim.te =
      (let module U = Eutil.Units in
       {
         Response.Te.default_config with
           Response.Te.probe_period = U.seconds 0.1;
         util_threshold = U.ratio 0.9;
         low_threshold = U.ratio 0.55;
         hysteresis = U.seconds 0.05;
         shift_fraction = U.ratio 1.0;
       });
    wake_time = 0.01;
    failure_detection = 0.1;
    idle_timeout = 0.3;
    sample_interval = 0.05;
    te_start = 0.0;
    transition_energy = 0.0;
  }

let power_of ex = Power.Model.cisco12000 ex.Topo.Example.graph

let run_fig7 ?(events = []) ?initial_splits ?(duration = 3.0) ?(config = fig7_config) () =
  let ex, tables = Fixtures.fig3_tables () in
  let demand = Fixtures.fig7_demand ex in
  let events = Sim.Set_demand (0.0, demand) :: events in
  let r = Sim.run ~config ?initial_splits ~tables ~power:(power_of ex) ~events ~duration () in
  (ex, tables, r)

let middle_link ex =
  Fixtures.link_between ex.Topo.Example.graph ex.Topo.Example.e ex.Topo.Example.h

let upper_link ex =
  Fixtures.link_between ex.Topo.Example.graph ex.Topo.Example.d ex.Topo.Example.g

let lower_link ex =
  Fixtures.link_between ex.Topo.Example.graph ex.Topo.Example.f ex.Topo.Example.j

let sample_near r t =
  let best = ref r.Sim.samples.(0) in
  Array.iter
    (fun sm ->
      if abs_float (sm.Sim.time -. t) < abs_float (!best.Sim.time -. t) then best := sm)
    r.Sim.samples;
  !best

let test_delivers_demand () =
  let _, _, r = run_fig7 () in
  Alcotest.(check bool)
    (Printf.sprintf "delivered %.2f" r.Sim.delivered_fraction)
    true
    (r.Sim.delivered_fraction > 0.95);
  let last = sample_near r 3.0 in
  Alcotest.(check (float 1e5)) "rate matches demand" 5e6 last.Sim.rate_total

let test_steady_state_on_always_on () =
  (* Default state: everything on the middle path, on-demand links asleep. *)
  let ex, _, r = run_fig7 () in
  let last = sample_near r 3.0 in
  Alcotest.(check bool) "middle carries everything" true
    (last.Sim.link_rates.(middle_link ex) > 4.9e6);
  Alcotest.(check (float 1.0)) "upper sleeps" 0.0 last.Sim.link_rates.(upper_link ex);
  Alcotest.(check (float 1.0)) "lower sleeps" 0.0 last.Sim.link_rates.(lower_link ex);
  (* Power below a fully powered network: some links are asleep. *)
  Alcotest.(check bool) "power savings" true (last.Sim.power_percent < 95.0)

let test_explicit_initial_split_consolidates () =
  let ex, tables = Fixtures.fig3_tables () in
  let pairs = Response.Tables.pairs tables in
  let initial_splits = List.map (fun od -> (od, [| 0.5; 0.5 |])) pairs in
  let demand = Fixtures.fig7_demand ex in
  let r =
    Sim.run ~config:fig7_config ~initial_splits ~tables ~power:(power_of ex)
      ~events:[ Sim.Set_demand (0.0, demand) ]
      ~duration:3.0 ()
  in
  (* Early on, the on-demand paths carry traffic... *)
  let early = sample_near r 0.05 in
  Alcotest.(check bool) "upper initially used" true (early.Sim.link_rates.(upper_link ex) > 1e6);
  (* ...and after consolidation they are idle. *)
  let late = sample_near r 3.0 in
  Alcotest.(check (float 1.0)) "upper drained" 0.0 late.Sim.link_rates.(upper_link ex);
  Alcotest.(check bool) "middle carries all" true (late.Sim.link_rates.(middle_link ex) > 4.9e6)

let test_failure_restores_traffic () =
  let ex, tables = Fixtures.fig3_tables () in
  let g = ex.Topo.Example.graph in
  let eh = Fixtures.link_between g ex.Topo.Example.e ex.Topo.Example.h in
  let demand = Fixtures.fig7_demand ex in
  let r =
    Sim.run ~config:fig7_config ~tables ~power:(power_of ex)
      ~events:[ Sim.Set_demand (0.0, demand); Sim.Fail_link (1.5, eh) ]
      ~duration:4.0 ()
  in
  (* Before the failure the middle path carries everything. *)
  let before = sample_near r 1.4 in
  Alcotest.(check bool) "middle before" true (before.Sim.link_rates.(eh) > 4.9e6);
  (* Shortly after, delivery drops... *)
  let during = sample_near r 1.55 in
  Alcotest.(check bool) "dip during detection" true (during.Sim.rate_total < 4.9e6);
  (* ...and within ~detection + wake + a couple of probe periods it is back on
     the on-demand paths. *)
  let after = sample_near r 2.5 in
  Alcotest.(check bool)
    (Printf.sprintf "restored (%.1f Mbit/s)" (after.Sim.rate_total /. 1e6))
    true (after.Sim.rate_total > 4.9e6);
  Alcotest.(check bool) "upper now used" true (after.Sim.link_rates.(upper_link ex) > 2.0e6);
  Alcotest.(check bool) "lower now used" true (after.Sim.link_rates.(lower_link ex) > 2.0e6);
  Alcotest.(check (float 1.0)) "middle dead" 0.0 after.Sim.link_rates.(eh)

let test_wake_delay_gates_recovery () =
  (* With a 1 s wake time, recovery from the failure takes at least
     detection + wake. *)
  let ex, tables = Fixtures.fig3_tables () in
  let g = ex.Topo.Example.graph in
  let eh = Fixtures.link_between g ex.Topo.Example.e ex.Topo.Example.h in
  let demand = Fixtures.fig7_demand ex in
  let config = { fig7_config with Sim.wake_time = 1.0 } in
  let r =
    Sim.run ~config ~tables ~power:(power_of ex)
      ~events:[ Sim.Set_demand (0.0, demand); Sim.Fail_link (1.5, eh) ]
      ~duration:5.0 ()
  in
  (* At 2.0 s (0.5 s after failure) the wake has not finished. *)
  let mid = sample_near r 2.0 in
  Alcotest.(check bool) "still down" true (mid.Sim.rate_total < 1e6);
  let after = sample_near r 4.5 in
  Alcotest.(check bool) "recovered after wake" true (after.Sim.rate_total > 4.9e6)

let test_repair_beats_detection () =
  (* Regression: the link fails at 1.5 and is repaired at 1.55, before the
     0.1 s detection delay elapses. The Detect event at 1.6 is stale — it
     must not mark the (healthy, repaired) link as failed, so traffic stays
     on the middle path for the rest of the run. *)
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let read () =
        Option.value
          (Obs.Registry.value Obs.Registry.default "netsim_stale_detects_total")
          ~default:0.0
      in
      let stale0 = read () in
      let ex, tables = Fixtures.fig3_tables () in
      let g = ex.Topo.Example.graph in
      let eh = Fixtures.link_between g ex.Topo.Example.e ex.Topo.Example.h in
      let demand = Fixtures.fig7_demand ex in
      let r =
        Sim.run ~config:fig7_config ~tables ~power:(power_of ex)
          ~events:
            [ Sim.Set_demand (0.0, demand); Sim.Fail_link (1.5, eh); Sim.Repair_link (1.55, eh) ]
          ~duration:4.0 ()
      in
      let after = sample_near r 3.5 in
      Alcotest.(check bool)
        (Printf.sprintf "middle still carries traffic (%.1f Mbit/s)"
           (after.Sim.link_rates.(eh) /. 1e6))
        true
        (after.Sim.link_rates.(eh) > 4.9e6);
      Alcotest.(check (float 1.0)) "no spurious failover to upper" 0.0
        after.Sim.link_rates.(upper_link ex);
      Alcotest.(check bool) "stale detect counted" true (read () -. stale0 >= 1.0))

let test_rejected_wake_feeds_back () =
  (* The upper on-demand link fails silently while asleep, then an overload
     makes A's agent shift towards it and ask for a wake. The request must
     be rejected, counted, and turned into control-plane knowledge on the
     spot — the agent re-plans immediately instead of blackholing traffic on
     the dead path until the (slow, 1 s here) detection delay elapses. *)
  let ex, tables = Fixtures.fig3_tables () in
  let g = ex.Topo.Example.graph in
  let m = Traffic.Matrix.create (G.node_count g) in
  Traffic.Matrix.set m ex.Topo.Example.a ex.Topo.Example.k 16e6;
  let config = { fig7_config with Sim.failure_detection = 1.0 } in
  let r =
    Sim.run ~config ~tables ~power:(power_of ex)
      ~events:[ Sim.Fail_link (0.05, upper_link ex); Sim.Set_demand (0.3, m) ]
      ~duration:3.0 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "wake rejected (%d)" r.Sim.rejected_wake_count)
    true (r.Sim.rejected_wake_count >= 1);
  (* Well before the detection delay would have fired, traffic is back on
     the (bottlenecked but alive) middle path rather than on the dead one. *)
  let before_detect = sample_near r 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "middle keeps carrying (%.1f Mbit/s)" (before_detect.Sim.rate_total /. 1e6))
    true
    (before_detect.Sim.rate_total > 9.5e6);
  Alcotest.(check (float 1.0)) "dead upper path stays empty" 0.0
    before_detect.Sim.link_rates.(upper_link ex)

let test_idle_links_sleep_and_power_follows () =
  let _, _, r = run_fig7 ~duration:3.0 () in
  let last = sample_near r 3.0 in
  (* 10 links exist; steady state should keep only the 4 middle-path links
     (A-E, C-E, E-H, H-K) awake. *)
  Alcotest.(check bool)
    (Printf.sprintf "links active = %d" last.Sim.links_active)
    true
    (last.Sim.links_active <= 5);
  Alcotest.(check bool) "power follows" true (last.Sim.power_percent < 80.0)

let test_demand_wakes_sleeping_paths () =
  (* Demand arrives only at t = 2 s, long after every link fell asleep. The
     data plane wakes the always-on path and traffic flows. *)
  let ex, tables = Fixtures.fig3_tables () in
  let demand = Fixtures.fig7_demand ex in
  let r =
    Sim.run ~config:fig7_config ~tables ~power:(power_of ex)
      ~events:[ Sim.Set_demand (2.0, demand) ]
      ~duration:4.0 ()
  in
  let quiet = sample_near r 1.5 in
  Alcotest.(check int) "everything asleep when idle" 0 quiet.Sim.links_active;
  let after = sample_near r 3.5 in
  Alcotest.(check bool) "traffic flows after wake" true (after.Sim.rate_total > 4.9e6)

let test_overload_activates_on_demand_paths () =
  (* Push 16 Mbit/s through the 10 Mbit/s middle path: the TE must spread to
     the on-demand paths, restoring full delivery. *)
  let ex, tables = Fixtures.fig3_tables () in
  let g = ex.Topo.Example.graph in
  let m = Traffic.Matrix.create (G.node_count g) in
  Traffic.Matrix.set m ex.Topo.Example.a ex.Topo.Example.k 8e6;
  Traffic.Matrix.set m ex.Topo.Example.c ex.Topo.Example.k 8e6;
  let r =
    Sim.run ~config:fig7_config ~tables ~power:(power_of ex)
      ~events:[ Sim.Set_demand (0.0, m) ]
      ~duration:3.0 ()
  in
  let last = sample_near r 3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "delivers %.1f of 16 Mbit/s" (last.Sim.rate_total /. 1e6))
    true
    (last.Sim.rate_total > 15e6);
  Alcotest.(check bool) "upper active" true (last.Sim.link_rates.(upper_link ex) > 1e6)

let test_fattree_sine_power_tracks_demand () =
  (* A small end-to-end datacenter scenario: k=4 fat-tree, far traffic
     following a sine; network power must be higher at the crest than at the
     trough (energy proportionality over time, Figure 4 / 8b). *)
  let ft = Topo.Fattree.make 4 in
  let g = ft.Topo.Fattree.graph in
  let power = Power.Model.commodity_dc g in
  let pairs = Traffic.Sine.fattree_pairs ft Traffic.Sine.Far in
  let tables = Response.Framework.precompute g power ~pairs in
  let period = Eutil.Units.seconds 20.0 in
  let events =
    List.init 21 (fun i ->
        let t = float_of_int i in
        Sim.Set_demand (t, Traffic.Sine.fattree ft Traffic.Sine.Far ~peak:(Eutil.Units.bps 4e8) ~period t))
  in
  let config =
    {
      fig7_config with
      Sim.te =
        {
          fig7_config.Sim.te with
          util_threshold = Eutil.Units.ratio 0.8;
          shift_fraction = Eutil.Units.ratio 0.5;
        };
      sample_interval = 0.25;
      idle_timeout = 1.0;
      wake_time = 0.1;
    }
  in
  let r = Sim.run ~config ~tables ~power ~events ~duration:20.0 () in
  let trough = sample_near r 1.0 in
  let crest = sample_near r 11.0 in
  Alcotest.(check bool)
    (Printf.sprintf "crest %.0f%% > trough %.0f%%" crest.Sim.power_percent trough.Sim.power_percent)
    true
    (crest.Sim.power_percent > trough.Sim.power_percent);
  Alcotest.(check bool) "delivered most demand" true (r.Sim.delivered_fraction > 0.85)


let test_obs_transition_counters () =
  (* The observability counters must agree exactly with the transition counts
     the simulator itself reports. Scenario: the initial always-on links idle
     out and sleep, then demand at t = 2 wakes them through the data plane. *)
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let read name =
        Option.value (Obs.Registry.value Obs.Registry.default name) ~default:0.0
      in
      let wake0 = read "netsim_wake_transitions_total" in
      let sleep0 = read "netsim_sleep_transitions_total" in
      let ex, tables = Fixtures.fig3_tables () in
      let demand = Fixtures.fig7_demand ex in
      let r =
        Sim.run ~config:fig7_config ~tables ~power:(power_of ex)
          ~events:[ Sim.Set_demand (2.0, demand) ]
          ~duration:4.0 ()
      in
      Alcotest.(check bool) "scenario has sleeps" true (r.Sim.sleep_count > 0);
      Alcotest.(check bool) "scenario has wakes" true (r.Sim.wake_count > 0);
      Alcotest.(check int) "wake counter matches result"
        r.Sim.wake_count
        (int_of_float (read "netsim_wake_transitions_total" -. wake0));
      Alcotest.(check int) "sleep counter matches result"
        r.Sim.sleep_count
        (int_of_float (read "netsim_sleep_transitions_total" -. sleep0)))

(* Property: on random demands over the Fig. 3 topology the simulator keeps
   its physical invariants — achieved rate never exceeds demand, power stays
   within [0, 100] %, delivery within [0, 1]. *)
let prop_sim_invariants =
  QCheck.Test.make ~name:"simulator invariants on random scenarios" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Eutil.Prng.create seed in
      let ex, tables = Fixtures.fig3_tables () in
      let g = ex.Topo.Example.graph in
      let events =
        List.init 4 (fun i ->
            let m = Traffic.Matrix.create (G.node_count g) in
            Traffic.Matrix.set m ex.Topo.Example.a ex.Topo.Example.k
              (Eutil.Prng.range rng 0.1e6 12e6);
            Traffic.Matrix.set m ex.Topo.Example.c ex.Topo.Example.k
              (Eutil.Prng.range rng 0.1e6 12e6);
            Sim.Set_demand (0.5 *. float_of_int i, m))
      in
      let r = Sim.run ~config:fig7_config ~tables ~power:(power_of ex) ~events ~duration:3.0 () in
      r.Sim.delivered_fraction >= 0.0
      && r.Sim.delivered_fraction <= 1.0 +. 1e-9
      && Array.for_all
           (fun sm ->
             sm.Sim.power_percent >= -1e-9
             && sm.Sim.power_percent <= 100.0 +. 1e-9
             && sm.Sim.rate_total <= sm.Sim.demand_total +. 1.0)
           r.Sim.samples)

let () =
  Alcotest.run "netsim"
    [
      ( "basic",
        [
          Alcotest.test_case "delivers demand" `Quick test_delivers_demand;
          Alcotest.test_case "steady state on always-on" `Quick test_steady_state_on_always_on;
          Alcotest.test_case "explicit initial split" `Quick test_explicit_initial_split_consolidates;
          Alcotest.test_case "idle sleep + power" `Quick test_idle_links_sleep_and_power_follows;
        ] );
      ( "failure",
        [
          Alcotest.test_case "failover restores traffic" `Quick test_failure_restores_traffic;
          Alcotest.test_case "wake delay gates recovery" `Quick test_wake_delay_gates_recovery;
          Alcotest.test_case "repair beats detection" `Quick test_repair_beats_detection;
          Alcotest.test_case "rejected wake feeds back" `Quick test_rejected_wake_feeds_back;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "demand wakes paths" `Quick test_demand_wakes_sleeping_paths;
          Alcotest.test_case "overload activates on-demand" `Quick test_overload_activates_on_demand_paths;
          Alcotest.test_case "fat-tree sine" `Slow test_fattree_sine_power_tracks_demand;
          Alcotest.test_case "obs transition counters" `Quick test_obs_transition_counters;
          QCheck_alcotest.to_alcotest prop_sim_invariants;
        ] );
    ]
