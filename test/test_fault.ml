(* Tests for the fault-injection subsystem: seeded scenario generation,
   the chaos harness (availability, conservation, recovery times), graceful
   degradation under node failures, and the single-link sweep that checks
   the paper's Section 4.3 failover claim empirically. *)

module G = Topo.Graph
module Sim = Netsim.Sim
module Scenario = Fault.Scenario
module Harness = Fault.Harness

let power_of ex = Power.Model.cisco12000 ex.Topo.Example.graph

let fast_config =
  {
    Sim.te =
      (let module U = Eutil.Units in
       {
         Response.Te.default_config with
           Response.Te.probe_period = U.seconds 0.1;
         util_threshold = U.ratio 0.9;
         low_threshold = U.ratio 0.55;
         hysteresis = U.seconds 0.05;
         shift_fraction = U.ratio 1.0;
       });
    wake_time = 0.01;
    failure_detection = 0.1;
    idle_timeout = 0.3;
    sample_interval = 0.05;
    te_start = 0.0;
    transition_energy = 0.0;
  }

(* ------------------------- scenario generation ---------------------- *)

let fig3 () =
  let ex, tables = Fixtures.fig3_tables () in
  (ex, tables, Fixtures.fig7_demand ex)

let test_events_deterministic () =
  let ex, _, base = fig3 () in
  let g = ex.Topo.Example.graph in
  let spec = { Scenario.default with Scenario.seed = 11; duration = 6.0 } in
  let e1 = Scenario.events spec g ~base in
  let e2 = Scenario.events spec g ~base in
  Alcotest.(check string) "same seed, same schedule" (Scenario.describe g e1)
    (Scenario.describe g e2);
  let e3 = Scenario.events { spec with Scenario.seed = 12 } g ~base in
  Alcotest.(check bool) "different seed, different schedule" true
    (Scenario.describe g e1 <> Scenario.describe g e3)

let test_events_well_formed () =
  (* Whatever processes overlap (links, nodes, SRLGs, a flap), the merged
     schedule must alternate fail/repair per link and stay time-sorted. *)
  let ex, _, base = fig3 () in
  let g = ex.Topo.Example.graph in
  List.iter
    (fun seed ->
      let spec =
        {
          Scenario.seed;
          duration = 8.0;
          warmup = 0.5;
          link_faults = Some { Scenario.mtbf = 2.0; mttr = 0.5 };
          node_faults = Some { Scenario.mtbf = 4.0; mttr = 1.0 };
          srlgs = [ [ 0; 1 ]; [ 2; 3 ] ];
          srlg_faults = Some { Scenario.mtbf = 5.0; mttr = 0.5 };
          flapping =
            Some { Scenario.flap_link = Some 4; flap_period = 1.0; flap_cycles = 5; flap_start = 1.0 };
          surges = [ { Scenario.surge_at = 3.0; surge_factor = 2.0; surge_duration = 1.0 } ];
        }
      in
      let events = Scenario.events spec g ~base in
      let down = Array.make (G.link_count g) false in
      let last_t = ref neg_infinity in
      List.iter
        (fun ev ->
          let t =
            match ev with
            | Sim.Set_demand (t, _) -> t
            | Sim.Fail_link (t, l) ->
                Alcotest.(check bool) "no double fail" false down.(l);
                down.(l) <- true;
                t
            | Sim.Repair_link (t, l) ->
                Alcotest.(check bool) "repair only a down link" true down.(l);
                down.(l) <- false;
                t
          in
          Alcotest.(check bool) "time-sorted" true (t >= !last_t);
          Alcotest.(check bool) "no faults before warmup" true
            (match ev with Sim.Fail_link _ -> t >= spec.Scenario.warmup | _ -> true);
          last_t := t)
        events)
    [ 0; 1; 2; 17; 99 ]

let test_random_srlgs () =
  let ex, _, _ = fig3 () in
  let g = ex.Topo.Example.graph in
  let groups = Scenario.random_srlgs g (Eutil.Prng.create 5) ~groups:3 ~size:2 in
  Alcotest.(check bool) "at least one group" true (List.length groups >= 1);
  let seen = Hashtbl.create 8 in
  List.iter
    (fun grp ->
      Alcotest.(check bool) "group size within bound" true (List.length grp <= 2 && grp <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) "valid link id" true (l >= 0 && l < G.link_count g);
          Alcotest.(check bool) "groups disjoint" false (Hashtbl.mem seen l);
          Hashtbl.replace seen l ())
        grp)
    groups

(* ------------------------------ harness ------------------------------ *)

let run_harness ?(spec_of = fun s -> s) ?(jobs = 1) ~trials seed =
  let ex, tables, base = fig3 () in
  let spec =
    spec_of
      {
        Scenario.default with
        Scenario.seed;
        duration = 5.0;
        link_faults = Some { Scenario.mtbf = 2.0; mttr = 0.4 };
      }
  in
  Harness.run ~config:fast_config ~jobs ~tables ~power:(power_of ex) ~base ~spec ~trials ()

let test_harness_deterministic_json () =
  let j1 = Harness.to_json (run_harness ~trials:2 3) in
  let j2 = Harness.to_json (run_harness ~trials:2 3) in
  Alcotest.(check string) "byte-identical JSON for equal seeds" j1 j2;
  let j3 = Harness.to_json (run_harness ~trials:2 4) in
  Alcotest.(check bool) "seed shows up in the output" true (j1 <> j3);
  match Obs.Export.validate_json j1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos JSON invalid: %s" e

(* The certified fan-out: trial k lands at index k whichever domain ran
   it, so the report must be byte-identical for any job count. *)
let test_harness_jobs_identical () =
  let j1 = Harness.to_json (run_harness ~jobs:1 ~trials:4 5) in
  let j4 = Harness.to_json (run_harness ~jobs:4 ~trials:4 5) in
  Alcotest.(check string) "jobs 1 and jobs 4 byte-identical" j1 j4

let prop_harness_jobs_identical =
  QCheck.Test.make ~name:"equal-seed chaos reports are byte-identical across jobs" ~count:4
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, trials) ->
      Harness.to_json (run_harness ~jobs:1 ~trials seed)
      = Harness.to_json (run_harness ~jobs:4 ~trials seed))

(* The summary JSON must depend only on the demand set, not on the order
   flows were inserted into the matrix — the hash-backed sparse
   representation must never leak iteration order into the report. *)
let test_harness_insertion_order_independent () =
  let json_with shuffle =
    let ex, tables, base = fig3 () in
    let flows = Traffic.Matrix.flows base in
    let base' = Traffic.Matrix.of_flows (Traffic.Matrix.size base) (shuffle flows) in
    let spec =
      {
        Scenario.default with
        Scenario.seed = 3;
        duration = 5.0;
        link_faults = Some { Scenario.mtbf = 2.0; mttr = 0.4 };
      }
    in
    Harness.to_json
      (Harness.run ~config:fast_config ~tables ~power:(power_of ex) ~base:base' ~spec ~trials:2 ())
  in
  Alcotest.(check string) "insertion order does not change the bytes"
    (json_with Fun.id)
    (json_with List.rev)

let test_harness_aggregates () =
  let r = run_harness ~trials:3 1 in
  Alcotest.(check int) "trials run" 3 (Array.length r.Harness.trials);
  Alcotest.(check bool) "availability in [0,1]" true
    (r.Harness.availability >= 0.0 && r.Harness.availability <= 1.0);
  Alcotest.(check bool) "recovery percentiles ordered" true
    (r.Harness.recovery_p50 <= r.Harness.recovery_p99
    && r.Harness.recovery_p99 <= r.Harness.recovery_max);
  Alcotest.(check bool) "outages match pooled recoveries" true
    (r.Harness.outages
    = Array.fold_left (fun acc tr -> acc + Array.length tr.Harness.tr_recoveries) 0 r.Harness.trials);
  Alcotest.(check bool) "per-trial seeds advance" true
    (Array.to_list r.Harness.trials
    |> List.mapi (fun i tr -> tr.Harness.tr_seed = 1 + i)
    |> List.for_all Fun.id)

let test_node_failure_scenario_accounts_loss () =
  (* A chassis failure at E kills both always-on paths at once; there is no
     failover for A and C, so the run must finish with the shortfall booked
     as loss (conservation holds) rather than hanging or raising. *)
  let r =
    run_harness ~trials:1 0 ~spec_of:(fun s ->
        {
          s with
          Scenario.link_faults = None;
          node_faults = Some { Scenario.mtbf = 1.5; mttr = 2.0 };
        })
  in
  Alcotest.(check bool) "some loss booked" true (r.Harness.lost_bits > 0.0);
  Alcotest.(check bool) "conservation holds" true
    (r.Harness.conservation_residual_bits <= 1e-6 *. Float.max 1.0 r.Harness.offered_bits);
  Alcotest.(check bool) "availability reflects the outage" true (r.Harness.availability < 1.0)

(* Property: delivered + lost = offered on every trial, whatever the seed
   and fault mix — Harness.run itself raises on violation, so surviving the
   call plus a zero pooled residual is the property. *)
let prop_conservation =
  QCheck.Test.make ~name:"chaos replay conserves traffic" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r =
        run_harness ~trials:1 seed ~spec_of:(fun s ->
            {
              s with
              Scenario.node_faults =
                (if seed mod 2 = 0 then Some { Scenario.mtbf = 4.0; mttr = 0.8 } else None);
            })
      in
      r.Harness.conservation_residual_bits <= 1e-6 *. Float.max 1.0 r.Harness.offered_bits
      && r.Harness.delivered_fraction >= 0.0
      && r.Harness.delivered_fraction <= 1.0 +. 1e-9)

(* --------------------------- Section 4.3 ----------------------------- *)

let test_single_link_sweep_fig3 () =
  (* Install the framework's own tables (with failover) on the example
     topology: every non-partitioning single-link failure must end with zero
     steady-state loss once the grace window passes — the Section 4.3 claim.
     Partitioning cuts must be identified as such. *)
  let ex = Topo.Example.make ~include_b:false () in
  let g = ex.Topo.Example.graph in
  let power = Power.Model.cisco12000 g in
  let pairs = [ (ex.Topo.Example.a, ex.Topo.Example.k); (ex.Topo.Example.c, ex.Topo.Example.k) ] in
  let tables = Response.Framework.precompute g power ~pairs in
  let base = Fixtures.fig7_demand ex in
  let sweep =
    Harness.single_link_sweep ~config:fast_config ~tables ~power ~base ~fail_at:1.0 ~grace:1.5
      ~duration:4.0 ()
  in
  Alcotest.(check int) "every link swept" (G.link_count g) (List.length sweep);
  List.iter
    (fun e ->
      if e.Harness.sw_partitioned = [] then
        Alcotest.(check (float 1.0))
          (Printf.sprintf "link %d: failover absorbs the cut" e.Harness.sw_link)
          0.0 e.Harness.sw_lost_bits_after
      else
        (* A partitioned pair cannot be served: its demand shows up as loss,
           never as a crash. *)
        Alcotest.(check bool)
          (Printf.sprintf "link %d: partition loses traffic" e.Harness.sw_link)
          true
          (e.Harness.sw_lost_bits_after > 0.0 || e.Harness.sw_final_rate < 5e6))
    sweep

let () =
  Alcotest.run "fault"
    [
      ( "scenario",
        [
          Alcotest.test_case "deterministic schedules" `Quick test_events_deterministic;
          Alcotest.test_case "well-formed schedules" `Quick test_events_well_formed;
          Alcotest.test_case "random srlgs" `Quick test_random_srlgs;
        ] );
      ( "harness",
        [
          Alcotest.test_case "deterministic JSON" `Quick test_harness_deterministic_json;
          Alcotest.test_case "jobs byte-identical" `Quick test_harness_jobs_identical;
          Alcotest.test_case "insertion-order independent" `Quick
            test_harness_insertion_order_independent;
          QCheck_alcotest.to_alcotest prop_harness_jobs_identical;
          Alcotest.test_case "aggregates" `Quick test_harness_aggregates;
          Alcotest.test_case "node failure accounts loss" `Quick test_node_failure_scenario_accounts_loss;
          QCheck_alcotest.to_alcotest prop_conservation;
        ] );
      ( "section-4.3",
        [ Alcotest.test_case "single-link sweep" `Quick test_single_link_sweep_fig3 ] );
    ]
