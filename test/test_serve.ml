(* Tests for the serve subsystem: QCheck round-trip laws for every wire
   frame shape, malformed-frame rejection, golden frame bytes, the
   prometheus-page renderer identity shared by `respctl stats` and the
   scrape endpoint, and a loopback integration session against a live
   server (query / update / link event / reload / drain). *)

module W = Serve.Wire

(* ----------------------------- generators ---------------------------- *)

let id_gen = QCheck.Gen.int_range 0 0x7fff_ffff
let version_gen = QCheck.Gen.int_range 0 0x3fff_ffff_ffff
let finite_float_gen = QCheck.Gen.float_range (-1e15) 1e15

let request_gen =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun origin dest -> W.Path_query { origin; dest }) id_gen id_gen;
      map3
        (fun origin dest bps -> W.Demand_update { origin; dest; bps })
        id_gen id_gen finite_float_gen;
      map2 (fun link up -> W.Link_event { link; up }) id_gen bool;
      return W.Stats;
      return W.Health;
      return W.Reload;
    ]

let status_gen = QCheck.Gen.oneofl [ W.Path_ok; W.Unknown_pair; W.No_usable_path ]

let response_gen =
  let open QCheck.Gen in
  oneof
    [
      map3
        (fun status level nodes -> W.Path_reply { status; level; nodes })
        status_gen (int_range 0 255)
        (list_size (int_range 0 20) id_gen);
      map (fun version -> W.Ack { version }) version_gen;
      ( version_gen >>= fun s_version ->
        version_gen >>= fun s_swaps ->
        version_gen >>= fun s_served ->
        finite_float_gen >>= fun s_uptime_s ->
        int_range 0 255 >>= fun s_levels ->
        finite_float_gen >>= fun s_power_percent ->
        return
          (W.Stats_reply
             { W.s_version; s_swaps; s_served; s_uptime_s; s_levels; s_power_percent }) );
      map2 (fun healthy version -> W.Health_reply { healthy; version }) bool version_gen;
      map2
        (fun code message -> W.Error_reply { code; message })
        (int_range 0 255)
        (string_size ~gen:printable (int_range 0 100));
    ]

(* --------------------------- round-trip laws -------------------------- *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request decode (encode r) = r, whole frame consumed" ~count:500
    (QCheck.make request_gen) (fun req ->
      let s = W.encode_request req in
      match W.decode_request s with
      | Ok (req', consumed) -> consumed = String.length s && W.equal_request req req'
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response decode (encode r) = r, whole frame consumed" ~count:500
    (QCheck.make response_gen) (fun resp ->
      let s = W.encode_response resp in
      match W.decode_response s with
      | Ok (resp', consumed) -> consumed = String.length s && W.equal_response resp resp'
      | Error _ -> false)

(* Streaming invariant: two frames back to back decode independently via
   the returned offset. *)
let prop_request_stream =
  QCheck.Test.make ~name:"two concatenated requests drain via ?pos" ~count:200
    (QCheck.make QCheck.Gen.(pair request_gen request_gen)) (fun (a, b) ->
      let s = W.encode_request a ^ W.encode_request b in
      match W.decode_request s with
      | Error _ -> false
      | Ok (a', next) -> (
          match W.decode_request ~pos:next s with
          | Error _ -> false
          | Ok (b', fin) ->
              W.equal_request a a' && W.equal_request b b' && fin = String.length s))

(* Total safety: the decoders never raise, whatever the bytes. *)
let prop_decode_never_raises =
  QCheck.Test.make ~name:"decoders are total on junk" ~count:1000
    QCheck.(string_gen QCheck.Gen.char) (fun s ->
      (match W.decode_request s with Ok _ -> () | Error _ -> ());
      (match W.decode_response s with Ok _ -> () | Error _ -> ());
      true)

(* ---------------------------- rejection ------------------------------ *)

(* Raw frame builder so the tests can forge headers the encoder refuses
   to produce. *)
let forge ?(magic = W.magic) ?(version = W.version) ?length payload =
  let b = Buffer.create 32 in
  Buffer.add_int32_be b magic;
  Buffer.add_uint8 b version;
  let len = match length with Some l -> l | None -> String.length payload in
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_string b payload;
  Buffer.contents b

let err_testable = Alcotest.testable (Fmt.of_to_string W.error_to_string) ( = )

let check_reject name frame expected =
  match W.decode_request frame with
  | Ok _ -> Alcotest.failf "%s: decoded instead of rejecting" name
  | Error e -> Alcotest.check err_testable name expected e

let test_truncated_prefixes () =
  let full = W.encode_request (W.Demand_update { origin = 1; dest = 2; bps = 2.5e9 }) in
  for len = 0 to String.length full - 1 do
    check_reject
      (Printf.sprintf "prefix of %d bytes" len)
      (String.sub full 0 len) W.Truncated
  done;
  Alcotest.(check bool) "full frame decodes" true
    (match W.decode_request full with Ok _ -> true | Error _ -> false)

let test_bad_magic () =
  let frame = forge ~magic:0x52535000l "\x04" in
  check_reject "corrupted magic" frame (W.Bad_magic 0x52535000l)

let test_bad_version () =
  check_reject "future version" (forge ~version:2 "\x04") (W.Bad_version 2)

let test_oversized () =
  let frame = forge ~length:(W.max_payload + 1) "\x04" in
  check_reject "payload above the 1 MiB bound" frame (W.Oversized (W.max_payload + 1))

let test_bad_tag () =
  check_reject "unassigned tag" (forge "\x7f") (W.Bad_tag 0x7f)

let test_bad_payload () =
  (* A path_query tag with a link_event-sized body. *)
  match W.decode_request (forge "\x01\x00\x00\x00\x03") with
  | Error (W.Bad_payload _) -> ()
  | Error e -> Alcotest.failf "expected Bad_payload, got %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "short path_query body decoded"

let test_empty_payload () =
  match W.decode_request (forge "") with
  | Error (W.Bad_payload _) -> ()
  | Error e -> Alcotest.failf "expected Bad_payload, got %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "empty payload decoded"

let test_encode_validation () =
  Alcotest.check_raises "negative node id"
    (Invalid_argument "Serve.Wire: origin -1 outside [0, 2147483647]") (fun () ->
      ignore (W.encode_request (W.Path_query { origin = -1; dest = 0 })));
  (match
     ignore (W.encode_request (W.Demand_update { origin = 0; dest = 1; bps = Float.nan }))
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN demand encoded");
  match
    ignore (W.encode_response (W.Path_reply { status = W.Path_ok; level = 256; nodes = [] }))
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "level 256 encoded"

(* ------------------------------ golden ------------------------------- *)

(* The committed fixture pins the byte layout: a codec change that still
   satisfies the round-trip laws (e.g. flipping endianness) fails here. *)

let golden_frames =
  [
    ("path_query", `Req (W.Path_query { origin = 3; dest = 17 }));
    ("demand_update", `Req (W.Demand_update { origin = 1; dest = 2; bps = 2.5e9 }));
    ("link_event", `Req (W.Link_event { link = 9; up = false }));
    ("stats", `Req W.Stats);
    ("health", `Req W.Health);
    ("reload", `Req W.Reload);
    ( "path_reply",
      `Resp (W.Path_reply { status = W.Path_ok; level = 2; nodes = [ 0; 4; 7; 21 ] }) );
    ("path_reply_no_path", `Resp (W.Path_reply { status = W.No_usable_path; level = 0; nodes = [] }));
    ("ack", `Resp (W.Ack { version = 5 }));
    ( "stats_reply",
      `Resp
        (W.Stats_reply
           {
             W.s_version = 7;
             s_swaps = 3;
             s_served = 12345;
             s_uptime_s = 12.5;
             s_levels = 2;
             s_power_percent = 61.25;
           }) );
    ("health_reply", `Resp (W.Health_reply { healthy = true; version = 9 }));
    ("error_reply", `Resp (W.Error_reply { code = 2; message = "bad link" }));
  ]

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let of_hex h =
  String.init
    (String.length h / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

(* `dune runtest` runs test binaries from test/, `dune exec` from the
   project root; accept either working directory. *)
let fixture_path name =
  if Sys.file_exists name then name else Filename.concat "test" name

let read_fixture path =
  In_channel.with_open_text (fixture_path path) (fun ic ->
      In_channel.input_lines ic
      |> List.filter_map (fun line ->
             match String.index_opt line ' ' with
             | None -> None
             | Some sp ->
                 Some
                   ( String.sub line 0 sp,
                     String.sub line (sp + 1) (String.length line - sp - 1) )))

let test_golden_frames () =
  let fixture = read_fixture "golden/wire-frames.hex" in
  Alcotest.(check int) "fixture covers every frame shape" (List.length golden_frames)
    (List.length fixture);
  List.iter
    (fun (name, value) ->
      match List.assoc_opt name fixture with
      | None -> Alcotest.failf "fixture line missing for %s" name
      | Some hex ->
          let encoded =
            match value with
            | `Req r -> W.encode_request r
            | `Resp r -> W.encode_response r
          in
          Alcotest.(check string) (name ^ " bytes") hex (to_hex encoded);
          let ok =
            match value with
            | `Req r -> (
                match W.decode_request (of_hex hex) with
                | Ok (r', _) -> W.equal_request r r'
                | Error _ -> false)
            | `Resp r -> (
                match W.decode_response (of_hex hex) with
                | Ok (r', _) -> W.equal_response r r'
                | Error _ -> false)
          in
          Alcotest.(check bool) (name ^ " decodes back") true ok)
    golden_frames

(* --------------------------- prometheus page -------------------------- *)

(* `respctl stats --metrics prom` and the daemon's GET /metrics both call
   Obs.Export.prometheus_page: one renderer, so the two surfaces cannot
   drift. The identity is pinned against the underlying exporter here. *)
let test_prometheus_page_identity () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      Serve.Metrics.observe_request W.Stats;
      let page = Obs.Export.prometheus_page () in
      let direct = Obs.Export.to_prometheus (Obs.Registry.snapshot Obs.Registry.default) in
      Alcotest.(check string) "single renderer behind both surfaces" direct page;
      Alcotest.(check bool) "page mentions the serve counters" true
        (let needle = "serve_requests_total" in
         let nh = String.length page and nn = String.length needle in
         let rec at i = i + nn <= nh && (String.sub page i nn = needle || at (i + 1)) in
         at 0))

(* ---------------------------- loopback ------------------------------- *)

let call_ok client req =
  match Serve.Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "call failed: %s" e

(* Encoded Path_reply bytes for each pair, the comparison key for the
   reload-equivalence check. *)
let answers client pairs =
  List.map
    (fun (origin, dest) -> W.encode_response (call_ok client (W.Path_query { origin; dest })))
    pairs

let test_loopback_session () =
  Obs.set_enabled true;
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.5 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let state = Serve.State.create g power ~pairs ~demand in
  let server =
    Serve.Server.start
      ~config:{ Serve.Server.default_config with port = 0; http_port = 0; workers = 2 }
      state
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.State.stop state;
      Obs.set_enabled false)
    (fun () ->
      let port = Serve.Server.port server in
      match Serve.Client.connect ~port () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok client ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () ->
              let probe = List.filteri (fun i _ -> i < 30) pairs in
              let origin, dest = List.hd probe in
              (* Path queries answer with installed paths. *)
              (match call_ok client (W.Path_query { origin; dest }) with
              | W.Path_reply { status = W.Path_ok; nodes; _ } ->
                  Alcotest.(check bool) "path starts at the origin" true
                    (match nodes with n :: _ -> n = origin | [] -> false)
              | resp ->
                  Alcotest.failf "expected a usable path, got %s"
                    (W.error_to_string (W.Bad_payload (W.encode_response resp))));
              let before = answers client probe in
              (* An equivalent-snapshot reload must not change any answer. *)
              (match call_ok client W.Reload with
              | W.Ack { version } ->
                  Alcotest.(check bool) "reload advanced the snapshot" true (version >= 1)
              | _ -> Alcotest.fail "reload not acknowledged");
              let after = answers client probe in
              List.iteri
                (fun i (b, a) ->
                  Alcotest.(check string)
                    (Printf.sprintf "pair %d byte-identical across reload" i)
                    (to_hex b) (to_hex a))
                (List.combine before after);
              (* Demand updates: staged on valid pairs, refused on the
                 diagonal. *)
              (match call_ok client (W.Demand_update { origin; dest; bps = 1e9 }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "demand update not acknowledged");
              (match call_ok client (W.Demand_update { origin; dest = origin; bps = 1e9 }) with
              | W.Error_reply { code; _ } ->
                  Alcotest.(check int) "diagonal refused" W.err_bad_argument code
              | _ -> Alcotest.fail "diagonal demand accepted");
              (* Link events flip failover state and are reversible. *)
              (match call_ok client (W.Link_event { link = 0; up = false }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "link-down not acknowledged");
              (match call_ok client (W.Path_query { origin; dest }) with
              | W.Path_reply _ -> ()
              | _ -> Alcotest.fail "query during link failure not answered");
              (match call_ok client (W.Link_event { link = 0; up = true }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "link-up not acknowledged");
              (* Out-of-range link refused. *)
              (match call_ok client (W.Link_event { link = 100000; up = false }) with
              | W.Error_reply { code; _ } ->
                  Alcotest.(check int) "bad link refused" W.err_bad_argument code
              | _ -> Alcotest.fail "out-of-range link accepted");
              (* Stats and health reflect the session. *)
              (match call_ok client W.Stats with
              | W.Stats_reply s ->
                  Alcotest.(check bool) "served counted" true (s.W.s_served > 0);
                  Alcotest.(check bool) "power percent sane" true
                    (s.W.s_power_percent >= 0.0 && s.W.s_power_percent <= 100.0)
              | _ -> Alcotest.fail "stats not answered");
              (match call_ok client W.Health with
              | W.Health_reply { healthy; _ } ->
                  Alcotest.(check bool) "healthy" true healthy
              | _ -> Alcotest.fail "health not answered");
              (* Scrape endpoint serves the shared prometheus page. *)
              match
                Serve.Client.http_get ~port:(Serve.Server.http_port server) ~path:"/metrics" ()
              with
              | Ok body -> Alcotest.(check bool) "scrape non-empty" true (String.length body > 0)
              | Error e -> Alcotest.failf "scrape: %s" e))

(* ------------------------------- suite ------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_stream;
          QCheck_alcotest.to_alcotest prop_decode_never_raises;
          Alcotest.test_case "truncated prefixes" `Quick test_truncated_prefixes;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "oversized" `Quick test_oversized;
          Alcotest.test_case "bad tag" `Quick test_bad_tag;
          Alcotest.test_case "bad payload" `Quick test_bad_payload;
          Alcotest.test_case "empty payload" `Quick test_empty_payload;
          Alcotest.test_case "encode validation" `Quick test_encode_validation;
          Alcotest.test_case "golden frames" `Quick test_golden_frames;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus page identity" `Quick test_prometheus_page_identity ] );
      ("loopback", [ Alcotest.test_case "session" `Quick test_loopback_session ]);
    ]
