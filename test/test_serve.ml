(* Tests for the serve subsystem: QCheck round-trip laws for every wire
   frame shape, malformed-frame rejection, golden frame bytes, the
   prometheus-page renderer identity shared by `respctl stats` and the
   scrape endpoint, and a loopback integration session against a live
   server (query / update / link event / reload / drain). *)

module W = Serve.Wire

(* ----------------------------- generators ---------------------------- *)

let id_gen = QCheck.Gen.int_range 0 0x7fff_ffff
let version_gen = QCheck.Gen.int_range 0 0x3fff_ffff_ffff
let finite_float_gen = QCheck.Gen.float_range (-1e15) 1e15

let request_gen =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun origin dest -> W.Path_query { origin; dest }) id_gen id_gen;
      map3
        (fun origin dest bps -> W.Demand_update { origin; dest; bps })
        id_gen id_gen finite_float_gen;
      map2 (fun link up -> W.Link_event { link; up }) id_gen bool;
      return W.Stats;
      return W.Health;
      return W.Reload;
    ]

let status_gen = QCheck.Gen.oneofl [ W.Path_ok; W.Unknown_pair; W.No_usable_path ]

let response_gen =
  let open QCheck.Gen in
  oneof
    [
      map3
        (fun status level nodes -> W.Path_reply { status; level; nodes })
        status_gen (int_range 0 255)
        (list_size (int_range 0 20) id_gen);
      map (fun version -> W.Ack { version }) version_gen;
      ( version_gen >>= fun s_version ->
        version_gen >>= fun s_swaps ->
        version_gen >>= fun s_served ->
        finite_float_gen >>= fun s_uptime_s ->
        int_range 0 255 >>= fun s_levels ->
        finite_float_gen >>= fun s_power_percent ->
        return
          (W.Stats_reply
             { W.s_version; s_swaps; s_served; s_uptime_s; s_levels; s_power_percent }) );
      map2 (fun healthy version -> W.Health_reply { healthy; version }) bool version_gen;
      map2
        (fun code message -> W.Error_reply { code; message })
        (int_range 0 255)
        (string_size ~gen:printable (int_range 0 100));
    ]

(* --------------------------- round-trip laws -------------------------- *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request decode (encode r) = r, whole frame consumed" ~count:500
    (QCheck.make request_gen) (fun req ->
      let s = W.encode_request req in
      match W.decode_request s with
      | Ok (req', consumed) -> consumed = String.length s && W.equal_request req req'
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response decode (encode r) = r, whole frame consumed" ~count:500
    (QCheck.make response_gen) (fun resp ->
      let s = W.encode_response resp in
      match W.decode_response s with
      | Ok (resp', consumed) -> consumed = String.length s && W.equal_response resp resp'
      | Error _ -> false)

(* Streaming invariant: two frames back to back decode independently via
   the returned offset. *)
let prop_request_stream =
  QCheck.Test.make ~name:"two concatenated requests drain via ?pos" ~count:200
    (QCheck.make QCheck.Gen.(pair request_gen request_gen)) (fun (a, b) ->
      let s = W.encode_request a ^ W.encode_request b in
      match W.decode_request s with
      | Error _ -> false
      | Ok (a', next) -> (
          match W.decode_request ~pos:next s with
          | Error _ -> false
          | Ok (b', fin) ->
              W.equal_request a a' && W.equal_request b b' && fin = String.length s))

(* Total safety: the decoders never raise, whatever the bytes. *)
let prop_decode_never_raises =
  QCheck.Test.make ~name:"decoders are total on junk" ~count:1000
    QCheck.(string_gen QCheck.Gen.char) (fun s ->
      (match W.decode_request s with Ok _ -> () | Error _ -> ());
      (match W.decode_response s with Ok _ -> () | Error _ -> ());
      true)

(* ---------------------------- rejection ------------------------------ *)

(* Raw frame builder so the tests can forge headers the encoder refuses
   to produce. *)
let forge ?(magic = W.magic) ?(version = W.version) ?length payload =
  let b = Buffer.create 32 in
  Buffer.add_int32_be b magic;
  Buffer.add_uint8 b version;
  let len = match length with Some l -> l | None -> String.length payload in
  Buffer.add_int32_be b (Int32.of_int len);
  Buffer.add_string b payload;
  Buffer.contents b

let err_testable = Alcotest.testable (Fmt.of_to_string W.error_to_string) ( = )

let check_reject name frame expected =
  match W.decode_request frame with
  | Ok _ -> Alcotest.failf "%s: decoded instead of rejecting" name
  | Error e -> Alcotest.check err_testable name expected e

let test_truncated_prefixes () =
  let full = W.encode_request (W.Demand_update { origin = 1; dest = 2; bps = 2.5e9 }) in
  for len = 0 to String.length full - 1 do
    check_reject
      (Printf.sprintf "prefix of %d bytes" len)
      (String.sub full 0 len) W.Truncated
  done;
  Alcotest.(check bool) "full frame decodes" true
    (match W.decode_request full with Ok _ -> true | Error _ -> false)

let test_bad_magic () =
  let frame = forge ~magic:0x52535000l "\x04" in
  check_reject "corrupted magic" frame (W.Bad_magic 0x52535000l)

let test_bad_version () =
  check_reject "future version" (forge ~version:2 "\x04") (W.Bad_version 2)

let test_oversized () =
  let frame = forge ~length:(W.max_payload + 1) "\x04" in
  check_reject "payload above the 1 MiB bound" frame (W.Oversized (W.max_payload + 1))

let test_bad_tag () =
  check_reject "unassigned tag" (forge "\x7f") (W.Bad_tag 0x7f)

let test_bad_payload () =
  (* A path_query tag with a link_event-sized body. *)
  match W.decode_request (forge "\x01\x00\x00\x00\x03") with
  | Error (W.Bad_payload _) -> ()
  | Error e -> Alcotest.failf "expected Bad_payload, got %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "short path_query body decoded"

let test_empty_payload () =
  match W.decode_request (forge "") with
  | Error (W.Bad_payload _) -> ()
  | Error e -> Alcotest.failf "expected Bad_payload, got %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "empty payload decoded"

let test_encode_validation () =
  Alcotest.check_raises "negative node id"
    (Invalid_argument "Serve.Wire: origin -1 outside [0, 2147483647]") (fun () ->
      ignore (W.encode_request (W.Path_query { origin = -1; dest = 0 })));
  (match
     ignore (W.encode_request (W.Demand_update { origin = 0; dest = 1; bps = Float.nan }))
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN demand encoded");
  match
    ignore (W.encode_response (W.Path_reply { status = W.Path_ok; level = 256; nodes = [] }))
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "level 256 encoded"

(* ------------------------------ golden ------------------------------- *)

(* The committed fixture pins the byte layout: a codec change that still
   satisfies the round-trip laws (e.g. flipping endianness) fails here. *)

let golden_frames =
  [
    ("path_query", `Req (W.Path_query { origin = 3; dest = 17 }));
    ("demand_update", `Req (W.Demand_update { origin = 1; dest = 2; bps = 2.5e9 }));
    ("link_event", `Req (W.Link_event { link = 9; up = false }));
    ("stats", `Req W.Stats);
    ("health", `Req W.Health);
    ("reload", `Req W.Reload);
    ( "path_reply",
      `Resp (W.Path_reply { status = W.Path_ok; level = 2; nodes = [ 0; 4; 7; 21 ] }) );
    ("path_reply_no_path", `Resp (W.Path_reply { status = W.No_usable_path; level = 0; nodes = [] }));
    ("ack", `Resp (W.Ack { version = 5 }));
    ( "stats_reply",
      `Resp
        (W.Stats_reply
           {
             W.s_version = 7;
             s_swaps = 3;
             s_served = 12345;
             s_uptime_s = 12.5;
             s_levels = 2;
             s_power_percent = 61.25;
           }) );
    ("health_reply", `Resp (W.Health_reply { healthy = true; version = 9 }));
    ("error_reply", `Resp (W.Error_reply { code = 2; message = "bad link" }));
  ]

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let of_hex h =
  String.init
    (String.length h / 2)
    (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

(* `dune runtest` runs test binaries from test/, `dune exec` from the
   project root; accept either working directory. *)
let fixture_path name =
  if Sys.file_exists name then name else Filename.concat "test" name

let read_fixture path =
  In_channel.with_open_text (fixture_path path) (fun ic ->
      In_channel.input_lines ic
      |> List.filter_map (fun line ->
             match String.index_opt line ' ' with
             | None -> None
             | Some sp ->
                 Some
                   ( String.sub line 0 sp,
                     String.sub line (sp + 1) (String.length line - sp - 1) )))

let test_golden_frames () =
  let fixture = read_fixture "golden/wire-frames.hex" in
  Alcotest.(check int) "fixture covers every frame shape" (List.length golden_frames)
    (List.length fixture);
  List.iter
    (fun (name, value) ->
      match List.assoc_opt name fixture with
      | None -> Alcotest.failf "fixture line missing for %s" name
      | Some hex ->
          let encoded =
            match value with
            | `Req r -> W.encode_request r
            | `Resp r -> W.encode_response r
          in
          Alcotest.(check string) (name ^ " bytes") hex (to_hex encoded);
          let ok =
            match value with
            | `Req r -> (
                match W.decode_request (of_hex hex) with
                | Ok (r', _) -> W.equal_request r r'
                | Error _ -> false)
            | `Resp r -> (
                match W.decode_response (of_hex hex) with
                | Ok (r', _) -> W.equal_response r r'
                | Error _ -> false)
          in
          Alcotest.(check bool) (name ^ " decodes back") true ok)
    golden_frames

(* --------------------------- prometheus page -------------------------- *)

(* `respctl stats --metrics prom` and the daemon's GET /metrics both call
   Obs.Export.prometheus_page: one renderer, so the two surfaces cannot
   drift. The identity is pinned against the underlying exporter here. *)
let test_prometheus_page_identity () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      Serve.Metrics.observe_request W.Stats;
      let page = Obs.Export.prometheus_page () in
      let direct = Obs.Export.to_prometheus (Obs.Registry.snapshot Obs.Registry.default) in
      Alcotest.(check string) "single renderer behind both surfaces" direct page;
      Alcotest.(check bool) "page mentions the serve counters" true
        (let needle = "serve_requests_total" in
         let nh = String.length page and nn = String.length needle in
         let rec at i = i + nn <= nh && (String.sub page i nn = needle || at (i + 1)) in
         at 0))

(* ---------------------------- loopback ------------------------------- *)

let call_ok client req =
  match Serve.Client.call client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "call failed: %s" e

(* Encoded Path_reply bytes for each pair, the comparison key for the
   reload-equivalence check. *)
let answers client pairs =
  List.map
    (fun (origin, dest) -> W.encode_response (call_ok client (W.Path_query { origin; dest })))
    pairs

let test_loopback_session () =
  Obs.set_enabled true;
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.5 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let state = Serve.State.create g power ~pairs ~demand in
  let server =
    Serve.Server.start
      ~config:{ Serve.Server.default_config with port = 0; http_port = 0; workers = 2 }
      state
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.State.stop state;
      Obs.set_enabled false)
    (fun () ->
      let port = Serve.Server.port server in
      match Serve.Client.connect ~port () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok client ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () ->
              let probe = List.filteri (fun i _ -> i < 30) pairs in
              let origin, dest = List.hd probe in
              (* Path queries answer with installed paths. *)
              (match call_ok client (W.Path_query { origin; dest }) with
              | W.Path_reply { status = W.Path_ok; nodes; _ } ->
                  Alcotest.(check bool) "path starts at the origin" true
                    (match nodes with n :: _ -> n = origin | [] -> false)
              | resp ->
                  Alcotest.failf "expected a usable path, got %s"
                    (W.error_to_string (W.Bad_payload (W.encode_response resp))));
              let before = answers client probe in
              (* An equivalent-snapshot reload must not change any answer. *)
              (match call_ok client W.Reload with
              | W.Ack { version } ->
                  Alcotest.(check bool) "reload advanced the snapshot" true (version >= 1)
              | _ -> Alcotest.fail "reload not acknowledged");
              let after = answers client probe in
              List.iteri
                (fun i (b, a) ->
                  Alcotest.(check string)
                    (Printf.sprintf "pair %d byte-identical across reload" i)
                    (to_hex b) (to_hex a))
                (List.combine before after);
              (* Demand updates: staged on valid pairs, refused on the
                 diagonal. *)
              (match call_ok client (W.Demand_update { origin; dest; bps = 1e9 }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "demand update not acknowledged");
              (match call_ok client (W.Demand_update { origin; dest = origin; bps = 1e9 }) with
              | W.Error_reply { code; _ } ->
                  Alcotest.(check int) "diagonal refused" W.err_bad_argument code
              | _ -> Alcotest.fail "diagonal demand accepted");
              (* Link events flip failover state and are reversible. *)
              (match call_ok client (W.Link_event { link = 0; up = false }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "link-down not acknowledged");
              (match call_ok client (W.Path_query { origin; dest }) with
              | W.Path_reply _ -> ()
              | _ -> Alcotest.fail "query during link failure not answered");
              (match call_ok client (W.Link_event { link = 0; up = true }) with
              | W.Ack _ -> ()
              | _ -> Alcotest.fail "link-up not acknowledged");
              (* Out-of-range link refused. *)
              (match call_ok client (W.Link_event { link = 100000; up = false }) with
              | W.Error_reply { code; _ } ->
                  Alcotest.(check int) "bad link refused" W.err_bad_argument code
              | _ -> Alcotest.fail "out-of-range link accepted");
              (* Stats and health reflect the session. *)
              (match call_ok client W.Stats with
              | W.Stats_reply s ->
                  Alcotest.(check bool) "served counted" true (s.W.s_served > 0);
                  Alcotest.(check bool) "power percent sane" true
                    (s.W.s_power_percent >= 0.0 && s.W.s_power_percent <= 100.0)
              | _ -> Alcotest.fail "stats not answered");
              (match call_ok client W.Health with
              | W.Health_reply { healthy; _ } ->
                  Alcotest.(check bool) "healthy" true healthy
              | _ -> Alcotest.fail "health not answered");
              (* Scrape endpoint serves the shared prometheus page. *)
              match
                Serve.Client.http_get ~port:(Serve.Server.http_port server) ~path:"/metrics" ()
              with
              | Ok body -> Alcotest.(check bool) "scrape non-empty" true (String.length body > 0)
              | Error e -> Alcotest.failf "scrape: %s" e))

(* Shutdown-path regression (the exit sequence `respctld --smoke` ends
   with): [stop] joins the accepter and the worker pool without
   deadlocking even while a client connection is live, is idempotent,
   and really tears the plane down — a bounded fresh connect is refused
   and a call on the drained connection errors instead of hanging. *)
let test_shutdown_path () =
  Obs.set_enabled true;
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:11 ~fraction:0.3 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 2.0) () in
  let state = Serve.State.create g power ~pairs ~demand in
  let server =
    Serve.Server.start
      ~config:{ Serve.Server.default_config with port = 0; http_port = 0; workers = 2 }
      state
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.State.stop state;
      Obs.set_enabled false)
    (fun () ->
      let port = Serve.Server.port server in
      let origin, dest = List.hd pairs in
      match Serve.Client.connect ~port () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok client ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () ->
              (match call_ok client (W.Path_query { origin; dest }) with
              | W.Path_reply _ -> ()
              | _ -> Alcotest.fail "warm-up query not answered");
              (* Stop with the connection still open: must return, and a
                 second stop must be a no-op rather than a second join. *)
              Serve.Server.stop server;
              Serve.Server.stop server;
              Alcotest.(check bool) "served at least the warm-up" true
                (Serve.Server.served server >= 1);
              (match Serve.Client.connect ~timeout_s:0.5 ~port () with
              | Ok c2 ->
                  Serve.Client.close c2;
                  Alcotest.fail "post-stop connect accepted"
              | Error _ -> ());
              match Serve.Client.call ~timeout_s:1.0 client (W.Path_query { origin; dest }) with
              | Ok _ -> Alcotest.fail "call after shutdown answered"
              | Error _ -> ()))

(* -------------------------- mutated goldens -------------------------- *)

(* Totality under realistic damage: flip a byte and/or chop the tail of
   a known-good frame (what the chaos proxy does on the wire) and both
   decoders must return [Ok] or a typed error without raising and
   without consuming past the buffer. Pure random strings rarely pass
   the magic check, so this drives the decoders through the deep
   payload-parsing branches the random fuzz misses. *)
let golden_frame_bytes =
  Array.of_list
    (List.map
       (fun (_, v) ->
         match v with `Req r -> W.encode_request r | `Resp r -> W.encode_response r)
       golden_frames)

let prop_mutated_golden_total =
  let gen =
    let open QCheck.Gen in
    int_range 0 (Array.length golden_frame_bytes - 1) >>= fun fi ->
    let n = String.length golden_frame_bytes.(fi) in
    int_range 0 (n - 1) >>= fun pos ->
    int_range 1 255 >>= fun flip ->
    int_range 0 4 >>= fun chop -> return (fi, pos, flip, chop)
  in
  QCheck.Test.make ~name:"mutated golden frames decode totally, no over-read" ~count:1000
    (QCheck.make gen) (fun (fi, pos, flip, chop) ->
      let s = golden_frame_bytes.(fi) in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip land 0xff));
      let keep = Int.max 0 (Bytes.length b - chop) in
      let s = Bytes.sub_string b 0 keep in
      let total_on decode =
        match decode s with
        | Ok ((_ : W.request), consumed) -> consumed >= 0 && consumed <= String.length s
        | Error (_ : W.error) -> true
      in
      let total_on_resp () =
        match W.decode_response s with
        | Ok ((_ : W.response), consumed) -> consumed >= 0 && consumed <= String.length s
        | Error (_ : W.error) -> true
      in
      total_on W.decode_request && total_on_resp ())

let test_crc32 () =
  (* The standard CRC-32 check value (reflected, poly 0xedb88320). *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (W.crc32 "123456789");
  Alcotest.(check int32) "empty string" 0l (W.crc32 "");
  Alcotest.(check bool) "one-bit difference changes the sum" true
    (not (Int32.equal (W.crc32 "journal-record") (W.crc32 "journal-recorc")))

let test_error_code_names () =
  List.iter
    (fun (code, name) -> Alcotest.(check string) name name (W.error_code_name code))
    [
      (W.err_malformed, "malformed");
      (W.err_bad_argument, "bad_argument");
      (W.err_shutting_down, "shutting_down");
      (W.err_overloaded, "overloaded");
      (W.err_deadline, "deadline");
      (99, "unknown");
    ]

(* ------------------------------- guard ------------------------------- *)

module G = Serve.Guard

let test_guard_config_validation () =
  let reject name cfg =
    match G.create cfg with
    | exception Invalid_argument _ -> ()
    | (_ : G.t) -> Alcotest.failf "%s accepted" name
  in
  reject "negative max_inflight" { G.default with G.max_inflight = -1 };
  reject "NaN request budget" { G.default with G.request_budget_s = Float.nan };
  reject "degrade_low of zero" { G.default with G.degrade_low = 0.0 };
  reject "degrade_low above one" { G.default with G.degrade_low = 1.5 }

let test_guard_hysteresis () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      let entries0 = Obs.Metric.Counter.value Serve.Metrics.degraded_entries in
      let cfg = { G.default with G.max_inflight = 4; degrade_low = 0.5; recover_after_s = 0.5 } in
      let t = G.create cfg in
      Alcotest.(check bool) "normal at rest" false (G.degraded t);
      (match G.admit t ~now:0.0 with
      | G.Admit -> ()
      | G.Shed -> Alcotest.fail "shed an idle guard");
      for _ = 1 to 4 do
        G.enter t
      done;
      Alcotest.(check int) "inflight tracked" 4 (G.inflight t);
      (match G.admit t ~now:1.0 with
      | G.Shed -> ()
      | G.Admit -> Alcotest.fail "admitted at the ceiling");
      Alcotest.(check bool) "degraded after the ceiling" true (G.degraded t);
      Alcotest.(check (float 0.0)) "degraded gauge raised" 1.0
        (Obs.Metric.Gauge.value Serve.Metrics.guard_degraded);
      Alcotest.(check (float 0.0)) "one degraded entry" (entries0 +. 1.0)
        (Obs.Metric.Counter.value Serve.Metrics.degraded_entries);
      (* Above the low watermark (0.5 * 4 = 2): hysteresis keeps shedding
         even though we are back under the ceiling. *)
      G.leave t;
      (match G.admit t ~now:2.0 with
      | G.Shed -> ()
      | G.Admit -> Alcotest.fail "admitted above the low watermark while degraded");
      (* Below the watermark the guard admits again but stays Degraded
         until the low streak outlasts recover_after_s. *)
      G.leave t;
      G.leave t;
      (match G.admit t ~now:3.0 with
      | G.Admit -> ()
      | G.Shed -> Alcotest.fail "shed below the low watermark");
      Alcotest.(check bool) "still degraded mid-streak" true (G.degraded t);
      (match G.admit t ~now:3.4 with
      | G.Admit -> ()
      | G.Shed -> Alcotest.fail "shed mid-streak");
      Alcotest.(check bool) "streak not yet complete" true (G.degraded t);
      (match G.admit t ~now:3.6 with
      | G.Admit -> ()
      | G.Shed -> Alcotest.fail "shed at recovery");
      Alcotest.(check bool) "recovered after a sustained low streak" false (G.degraded t);
      Alcotest.(check (float 0.0)) "degraded gauge cleared" 0.0
        (Obs.Metric.Gauge.value Serve.Metrics.guard_degraded);
      G.leave t;
      (* A fresh spike re-enters Degraded: the machine is reusable. *)
      for _ = 1 to 4 do
        G.enter t
      done;
      (match G.admit t ~now:4.0 with
      | G.Shed -> ()
      | G.Admit -> Alcotest.fail "second spike admitted");
      Alcotest.(check bool) "second degradation" true (G.degraded t))

let test_guard_deadlines_and_conns () =
  let t = G.create { G.default with G.request_budget_s = 1.0; max_conns = 2 } in
  let deadline = G.deadline t ~now:10.0 in
  Alcotest.(check bool) "not expired inside the budget" false
    (G.expired ~deadline ~now:10.5);
  Alcotest.(check bool) "expired past the budget" true (G.expired ~deadline ~now:11.5);
  Alcotest.(check (float 1e-9)) "remaining inside the budget" 0.5
    (G.remaining_s ~deadline ~now:10.5);
  Alcotest.(check (float 0.0)) "remaining clamps at zero" 0.0
    (G.remaining_s ~deadline ~now:12.0);
  let unlimited = G.create { G.default with G.request_budget_s = 0.0 } in
  Alcotest.(check bool) "zero budget never expires" false
    (G.expired ~deadline:(G.deadline unlimited ~now:10.0) ~now:1.0e12);
  Alcotest.(check bool) "connection cap admits to the limit" true
    (G.conn_opened t && G.conn_opened t);
  Alcotest.(check bool) "third connection refused" false (G.conn_opened t);
  G.conn_closed t;
  Alcotest.(check bool) "freed slot admits again" true (G.conn_opened t);
  Alcotest.(check int) "conns tracked" 2 (G.conns t)

(* ------------------------------ journal ------------------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "test-serve" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let journal_open_ok path =
  match Serve.Journal.open_ path with
  | Ok j -> j
  | Error e -> Alcotest.failf "journal open: %s" e

let append_ok j r =
  match Serve.Journal.append j r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "journal append: %s" e

let req_testable = Alcotest.testable (Fmt.of_to_string (fun r -> to_hex (W.encode_request r))) W.equal_request

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      let du = W.Demand_update { origin = 3; dest = 9; bps = 1.5e9 } in
      let le = W.Link_event { link = 4; up = false } in
      let j = journal_open_ok path in
      Alcotest.(check (list req_testable)) "fresh journal is empty" [] (Serve.Journal.entries j);
      Alcotest.(check bool) "fresh journal is whole" false (Serve.Journal.torn j);
      append_ok j du;
      append_ok j le;
      (match Serve.Journal.append j W.Stats with
      | exception Invalid_argument _ -> ()
      | Ok () | Error _ -> Alcotest.fail "non-journalable request accepted");
      Serve.Journal.close j;
      let j2 = journal_open_ok path in
      Alcotest.(check (list req_testable)) "records replay in order" [ du; le ]
        (Serve.Journal.entries j2);
      (* Compaction replaces the contents; appends continue after it. *)
      let du2 = W.Demand_update { origin = 1; dest = 2; bps = 7.0e8 } in
      (match Serve.Journal.compact j2 [ du2 ] with
      | Ok () -> ()
      | Error e -> Alcotest.failf "compact: %s" e);
      append_ok j2 le;
      Serve.Journal.close j2;
      let j3 = journal_open_ok path in
      Alcotest.(check (list req_testable)) "checkpoint plus tail" [ du2; le ]
        (Serve.Journal.entries j3);
      Serve.Journal.close j3)

let test_journal_torn_tail () =
  with_temp_journal (fun path ->
      let du = W.Demand_update { origin = 3; dest = 9; bps = 1.5e9 } in
      let j = journal_open_ok path in
      append_ok j du;
      Serve.Journal.close j;
      (* A half-written record: the length word promises 32 bytes, the
         crash left nine. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\x20torn-tail";
      close_out oc;
      let j2 = journal_open_ok path in
      Alcotest.(check bool) "torn tail detected" true (Serve.Journal.torn j2);
      Alcotest.(check (list req_testable)) "whole records survive" [ du ]
        (Serve.Journal.entries j2);
      (* The truncation put the file back on a record boundary: appends
         after a torn open replay cleanly. *)
      let le = W.Link_event { link = 0; up = true } in
      append_ok j2 le;
      Serve.Journal.close j2;
      let j3 = journal_open_ok path in
      Alcotest.(check bool) "healed after truncation" false (Serve.Journal.torn j3);
      Alcotest.(check (list req_testable)) "append after heal" [ du; le ]
        (Serve.Journal.entries j3);
      Serve.Journal.close j3)

let test_journal_corrupt_record () =
  with_temp_journal (fun path ->
      let j = journal_open_ok path in
      append_ok j (W.Demand_update { origin = 3; dest = 9; bps = 1.5e9 });
      append_ok j (W.Link_event { link = 4; up = false });
      Serve.Journal.close j;
      (* Flip one payload byte of the first record: the CRC must reject
         it, and everything from the corruption on is dropped. *)
      let ic = open_in_bin path in
      let image = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string image in
      Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let j2 = journal_open_ok path in
      Alcotest.(check bool) "corruption detected" true (Serve.Journal.torn j2);
      Alcotest.(check (list req_testable)) "corrupt suffix dropped" []
        (Serve.Journal.entries j2);
      Serve.Journal.close j2)

(* ------------------------- crash-restart drill ------------------------ *)

(* Everything resolve-visible, serialized: "byte-identical" below means
   the wire bytes of every answer plus the evaluation figures (power as
   IEEE bits) — the snapshot version is excluded, a restart resets it. *)
let state_bytes st pairs =
  let b = Buffer.create 1024 in
  List.iter
    (fun (origin, dest) ->
      let status, level, nodes = Serve.State.resolve st ~origin ~dest in
      Buffer.add_string b (W.encode_response (W.Path_reply { status; level; nodes })))
    pairs;
  Buffer.add_string b (string_of_int (Serve.State.levels_activated st));
  Buffer.add_string b (Int64.to_string (Int64.bits_of_float (Serve.State.power_percent st)));
  Buffer.contents b

let test_journal_restart_identity () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      with_temp_journal (fun path ->
          let g = Topo.Geant.make () in
          let power = Power.Model.cisco12000 g in
          let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.5 in
          let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
          let appends0 = Obs.Metric.Counter.value Serve.Metrics.journal_appends in
          let compactions0 = Obs.Metric.Counter.value Serve.Metrics.journal_compactions in
          let step = Eutil.Units.to_float (Eutil.Units.gbps 0.2) in
          let b1 =
            let j = journal_open_ok path in
            let s1 = Serve.State.create ~journal:j g power ~pairs ~demand in
            List.iteri
              (fun i (origin, dest) ->
                if i < 3 then
                  match Serve.State.update_demand s1 ~origin ~dest ~bps:(step *. float_of_int (i + 1)) with
                  | Ok (_ : int) -> ()
                  | Error e -> Alcotest.failf "update: %s" e)
              pairs;
            (match Serve.State.set_link s1 ~link:0 ~up:false with
            | Ok (_ : int) -> ()
            | Error e -> Alcotest.failf "set_link: %s" e);
            ignore (Serve.State.reload s1);
            let b = state_bytes s1 pairs in
            Serve.State.stop s1;
            b
          in
          Alcotest.(check bool) "updates journaled" true
            (Obs.Metric.Counter.value Serve.Metrics.journal_appends >= appends0 +. 4.0);
          Alcotest.(check bool) "checkpoint ran on swap" true
            (Obs.Metric.Counter.value Serve.Metrics.journal_compactions > compactions0);
          (* Simulated kill -9 + restart: same boot matrix, replay the
             journal the crash left behind. *)
          let j2 = journal_open_ok path in
          Alcotest.(check bool) "clean journal after stop" false (Serve.Journal.torn j2);
          let s2 = Serve.State.create ~journal:j2 g power ~pairs ~demand in
          let b2 = state_bytes s2 pairs in
          Serve.State.stop s2;
          Alcotest.(check string) "restart rebuilds byte-identical state" (to_hex b1) (to_hex b2);
          (* And once more with a torn tail glued on: the half-written
             record must vanish without changing the outcome. *)
          let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
          output_string oc "\x00\x00\x00\x20torn-tail";
          close_out oc;
          let j3 = journal_open_ok path in
          Alcotest.(check bool) "torn tail detected on restart" true (Serve.Journal.torn j3);
          let s3 = Serve.State.create ~journal:j3 g power ~pairs ~demand in
          let b3 = state_bytes s3 pairs in
          Serve.State.stop s3;
          Alcotest.(check string) "torn tail dropped, state unchanged" (to_hex b1) (to_hex b3)))

(* ------------------------- server resilience ------------------------- *)

let serve_fixture ?(guard = G.default) f =
  Obs.set_enabled true;
  let g = Topo.Geant.make () in
  let power = Power.Model.cisco12000 g in
  let pairs = Traffic.Gravity.random_node_pairs g ~seed:7 ~fraction:0.5 in
  let demand = Traffic.Gravity.make g ~pairs ~total:(Eutil.Units.gbps 5.0) () in
  let state = Serve.State.create g power ~pairs ~demand in
  let server =
    Serve.Server.start
      ~config:{ Serve.Server.default_config with port = 0; http_port = 0; workers = 2; guard }
      state
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.State.stop state;
      Obs.set_enabled false)
    (fun () -> f server (Array.of_list pairs))

let request_port port req = Serve.Client.request ~connect_timeout_s:2.0 ~timeout_s:5.0 ~port req

let test_server_shedding () =
  serve_fixture
    ~guard:{ G.default with G.max_inflight = 2; degrade_low = 0.5; recover_after_s = 0.05 }
    (fun server pairs ->
      let port = Serve.Server.port server in
      let guard = Serve.Server.guard server in
      let origin, dest = pairs.(0) in
      let sheds0 = Obs.Metric.Counter.value Serve.Metrics.sheds in
      let retries0 = Obs.Metric.Counter.value Serve.Metrics.client_retries in
      (* Hold the in-flight ceiling from outside: every request the wire
         delivers while we sit at the ceiling must shed. *)
      G.enter guard;
      G.enter guard;
      (match request_port port (W.Path_query { origin; dest }) with
      | Ok (W.Error_reply { code; _ }) ->
          Alcotest.(check int) "overloaded error code" W.err_overloaded code
      | Ok _ -> Alcotest.fail "expected err_overloaded while at the ceiling"
      | Error e -> Alcotest.failf "shed request failed on transport: %s" e);
      Alcotest.(check bool) "shed counted" true
        (Obs.Metric.Counter.value Serve.Metrics.sheds > sheds0);
      Alcotest.(check bool) "guard degraded on the wire path" true (G.degraded guard);
      (* A retrying client treats the shed as transient and burns its
         budget — counted on the retry counter. *)
      (match
         Serve.Client.request ~connect_timeout_s:2.0 ~timeout_s:5.0
           ~retry:{ Serve.Client.attempts = 2; base_backoff_s = 0.01; max_backoff_s = 0.02; seed = 3 }
           ~port (W.Path_query { origin; dest })
       with
      | Ok (W.Error_reply { code; _ }) ->
          Alcotest.(check int) "still overloaded after retries" W.err_overloaded code
      | Ok _ -> Alcotest.fail "expected err_overloaded after retries"
      | Error e -> Alcotest.failf "retried request failed on transport: %s" e);
      Alcotest.(check bool) "retries counted" true
        (Obs.Metric.Counter.value Serve.Metrics.client_retries > retries0);
      (* Release the ceiling: after the hysteresis streak the guard
         recovers and requests flow again. *)
      G.leave guard;
      G.leave guard;
      (* Recovery needs a sustained low streak, so keep probing: early
         probes may be admitted (below the watermark) or shed (streak
         voided) while the guard is still Degraded. *)
      let rec recover tries =
        if tries > 200 then Alcotest.fail "server never recovered from Degraded"
        else begin
          (match request_port port (W.Path_query { origin; dest }) with
          | Ok (W.Path_reply _) -> ()
          | Ok (W.Error_reply { code; _ }) when code = W.err_overloaded -> ()
          | Ok _ -> Alcotest.fail "unexpected reply during recovery"
          | Error e -> Alcotest.failf "recovery probe failed: %s" e);
          if G.degraded guard then begin
            Unix.sleepf 0.02;
            recover (tries + 1)
          end
        end
      in
      recover 0;
      Alcotest.(check bool) "guard back to normal" false (G.degraded guard);
      match request_port port (W.Path_query { origin; dest }) with
      | Ok (W.Path_reply _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "recovered server did not serve")

let test_server_deadline () =
  serve_fixture
    ~guard:{ G.default with G.request_budget_s = 1.0e-9 }
    (fun server pairs ->
      let port = Serve.Server.port server in
      let origin, dest = pairs.(0) in
      let hits0 = Obs.Metric.Counter.value Serve.Metrics.deadline_hits in
      (match request_port port (W.Path_query { origin; dest }) with
      | Ok (W.Error_reply { code; _ }) ->
          Alcotest.(check int) "deadline error code" W.err_deadline code
      | Ok _ -> Alcotest.fail "expected err_deadline under a 1 ns budget"
      | Error e -> Alcotest.failf "deadline request failed on transport: %s" e);
      Alcotest.(check bool) "deadline hit counted" true
        (Obs.Metric.Counter.value Serve.Metrics.deadline_hits > hits0))

let test_server_conn_cap () =
  serve_fixture
    ~guard:{ G.default with G.max_conns = 1 }
    (fun server pairs ->
      let port = Serve.Server.port server in
      let origin, dest = pairs.(0) in
      let refused0 = Obs.Metric.Counter.value Serve.Metrics.conns_refused in
      match Serve.Client.connect ~port () with
      | Error e -> Alcotest.failf "first connect: %s" e
      | Ok c1 ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c1)
            (fun () ->
              (match Serve.Client.call c1 (W.Path_query { origin; dest }) with
              | Ok (W.Path_reply _) -> ()
              | Ok _ | Error _ -> Alcotest.fail "query on the admitted connection failed");
              (* The cap counts accepted binary sockets: the second TCP
                 connect lands, but the server closes it at admission. *)
              match Serve.Client.connect ~port () with
              | Error (_ : string) -> ()
              | Ok c2 ->
                  Fun.protect
                    ~finally:(fun () -> Serve.Client.close c2)
                    (fun () ->
                      (match Serve.Client.call ~timeout_s:2.0 c2 (W.Path_query { origin; dest }) with
                      | Error (_ : string) -> ()
                      | Ok _ -> Alcotest.fail "request served over the connection cap");
                      Alcotest.(check bool) "refusal counted" true
                        (Obs.Metric.Counter.value Serve.Metrics.conns_refused > refused0))))

let test_server_reaper () =
  serve_fixture
    ~guard:{ G.default with G.idle_timeout_s = 0.05; read_deadline_s = 0.05 }
    (fun server pairs ->
      let port = Serve.Server.port server in
      let origin, dest = pairs.(0) in
      let idle0 = Obs.Metric.Counter.value Serve.Metrics.reaped_idle in
      let slow0 = Obs.Metric.Counter.value Serve.Metrics.reaped_read_deadline in
      (* Slow loris over a raw socket: half a frame, then silence — the
         read deadline, not the idle timeout, must collect it. *)
      let loris = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect loris (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let frame = W.encode_request (W.Path_query { origin; dest }) in
      let half = String.length frame / 2 in
      ignore (Unix.write_substring loris frame 0 half);
      match Serve.Client.connect ~port () with
      | Error e ->
          Unix.close loris;
          Alcotest.failf "connect: %s" e
      | Ok idle_conn ->
          Fun.protect
            ~finally:(fun () ->
              Serve.Client.close idle_conn;
              try Unix.close loris with Unix.Unix_error (_e, _, _) -> ())
            (fun () ->
              (* Warm the idle connection so it is live, then go silent. *)
              (match Serve.Client.call idle_conn (W.Path_query { origin; dest }) with
              | Ok (W.Path_reply _) -> ()
              | Ok _ | Error _ -> Alcotest.fail "warm-up query failed");
              (* Reaping sweeps are rate-limited to one per second per
                 worker: poll the counters with a generous ceiling. *)
              let deadline = Unix.gettimeofday () +. 8.0 in
              let rec wait () =
                let idle_reaped = Obs.Metric.Counter.value Serve.Metrics.reaped_idle > idle0 in
                let loris_reaped =
                  Obs.Metric.Counter.value Serve.Metrics.reaped_read_deadline > slow0
                in
                if idle_reaped && loris_reaped then ()
                else if Unix.gettimeofday () > deadline then
                  Alcotest.failf "reaper missed a connection (idle %b, loris %b)" idle_reaped
                    loris_reaped
                else begin
                  Unix.sleepf 0.1;
                  wait ()
                end
              in
              wait ();
              (* A reaped connection is dead: the next call fails. *)
              match Serve.Client.call idle_conn (W.Path_query { origin; dest }) with
              | Error (_ : string) -> ()
              | Ok _ -> Alcotest.fail "reaped connection still answered"))

(* ------------------------ chaos proxy + breaker ----------------------- *)

let test_breaker_via_blackhole () =
  serve_fixture (fun server pairs ->
      let proxy = Serve.Chaosproxy.start ~seed:5 ~upstream_port:(Serve.Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Serve.Chaosproxy.stop proxy)
        (fun () ->
          let opens0 = Obs.Metric.Counter.value Serve.Metrics.breaker_opens in
          let timeouts0 = Obs.Metric.Counter.value Serve.Metrics.client_timeouts in
          Serve.Chaosproxy.set_fault proxy Serve.Chaosproxy.Blackhole;
          let cfg =
            {
              Serve.Load.default with
              Serve.Load.port = Serve.Chaosproxy.port proxy;
              conns = 1;
              requests = 4;
              pairs;
              timeout_s = 0.1;
              retries = 0;
              breaker_failures = 2;
              breaker_cooldown_s = 0.05;
              seed = 13;
            }
          in
          match Serve.Load.run cfg with
          | Error e -> Alcotest.failf "load through the blackhole: %s" e
          | Ok r ->
              Alcotest.(check int) "nothing completed" 0 r.Serve.Load.completed;
              Alcotest.(check int) "every request failed" 4 r.Serve.Load.failed;
              Alcotest.(check bool) "timeouts detected" true (r.Serve.Load.timeouts >= 2);
              Alcotest.(check bool) "breaker opened" true (r.Serve.Load.breaker_opens >= 1);
              Alcotest.(check bool) "breaker opens counted" true
                (Obs.Metric.Counter.value Serve.Metrics.breaker_opens > opens0);
              Alcotest.(check bool) "client timeouts counted" true
                (Obs.Metric.Counter.value Serve.Metrics.client_timeouts > timeouts0);
              (* Fault cleared: the same path serves cleanly again. *)
              Serve.Chaosproxy.set_fault proxy Serve.Chaosproxy.Pass;
              let origin, dest = pairs.(0) in
              match
                Serve.Client.request ~connect_timeout_s:2.0 ~timeout_s:2.0
                  ~retry:Serve.Client.default_retry
                  ~port:(Serve.Chaosproxy.port proxy)
                  (W.Path_query { origin; dest })
              with
              | Ok (W.Path_reply _) -> ()
              | Ok _ | Error _ -> Alcotest.fail "proxy path did not recover after the fault"))

(* ------------------------------- suite ------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_stream;
          QCheck_alcotest.to_alcotest prop_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_mutated_golden_total;
          Alcotest.test_case "truncated prefixes" `Quick test_truncated_prefixes;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "oversized" `Quick test_oversized;
          Alcotest.test_case "bad tag" `Quick test_bad_tag;
          Alcotest.test_case "bad payload" `Quick test_bad_payload;
          Alcotest.test_case "empty payload" `Quick test_empty_payload;
          Alcotest.test_case "encode validation" `Quick test_encode_validation;
          Alcotest.test_case "golden frames" `Quick test_golden_frames;
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "error code names" `Quick test_error_code_names;
        ] );
      ( "guard",
        [
          Alcotest.test_case "config validation" `Quick test_guard_config_validation;
          Alcotest.test_case "hysteresis" `Quick test_guard_hysteresis;
          Alcotest.test_case "deadlines and connection caps" `Quick test_guard_deadlines_and_conns;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip and compaction" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "corrupt record" `Quick test_journal_corrupt_record;
          Alcotest.test_case "crash-restart identity" `Quick test_journal_restart_identity;
        ] );
      ( "export",
        [ Alcotest.test_case "prometheus page identity" `Quick test_prometheus_page_identity ] );
      ( "loopback",
        [
          Alcotest.test_case "session" `Quick test_loopback_session;
          Alcotest.test_case "shutdown path" `Quick test_shutdown_path;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "shedding and recovery" `Quick test_server_shedding;
          Alcotest.test_case "request deadline" `Quick test_server_deadline;
          Alcotest.test_case "connection cap" `Quick test_server_conn_cap;
          Alcotest.test_case "reaper" `Quick test_server_reaper;
          Alcotest.test_case "breaker via blackhole" `Quick test_breaker_via_blackhole;
        ] );
    ]
