(* Tests for the observability subsystem: metric semantics, histogram
   quantile accuracy against a sorted-array oracle, exporter output,
   JSON validation and the span trace tree. *)

module M = Obs.Metric
module R = Obs.Registry

(* Metrics only mutate while observability is enabled; every test that
   records restores the switch (and any injected clock) on exit. *)
let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let with_obs f =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.Clock.reset_source ())
    f

(* ----------------------------- instruments ---------------------------- *)

let test_counter_semantics () =
  with_obs (fun () ->
      let reg = R.create () in
      let c = M.Counter.create ~registry:reg ~help:"h" "c_total" in
      M.Counter.incr c;
      M.Counter.add c 2.5;
      M.Counter.add_int c 3;
      Alcotest.(check (float 1e-9)) "accumulates" 6.5 (M.Counter.value c);
      Alcotest.check_raises "negative increment rejected"
        (Invalid_argument "Obs.Metric.Counter.add: negative or NaN increment") (fun () ->
          M.Counter.add c (-1.0));
      Obs.set_enabled false;
      M.Counter.incr c;
      Alcotest.(check (float 1e-9)) "no-op when disabled" 6.5 (M.Counter.value c);
      Obs.set_enabled true;
      Alcotest.(check (option (float 1e-9))) "registry read-back" (Some 6.5)
        (R.value reg "c_total"))

let test_gauge_semantics () =
  with_obs (fun () ->
      let reg = R.create () in
      let g = M.Gauge.create ~registry:reg ~help:"h" "g" in
      M.Gauge.set g 4.0;
      M.Gauge.add g (-1.5);
      Alcotest.(check (float 1e-9)) "set then add" 2.5 (M.Gauge.value g);
      M.Gauge.set_int g 7;
      Alcotest.(check (float 1e-9)) "set_int overrides" 7.0 (M.Gauge.value g);
      Alcotest.check_raises "NaN rejected" (Invalid_argument "Obs.Metric.Gauge.set: NaN")
        (fun () -> M.Gauge.set g Float.nan))

let test_family_semantics () =
  with_obs (fun () ->
      let reg = R.create () in
      let fam = M.Family.counter ~registry:reg ~help:"h" ~label_names:[ "op" ] "ops_total" in
      let a = M.Family.labels fam [ "read" ] in
      let b = M.Family.labels fam [ "write" ] in
      let a' = M.Family.labels fam [ "read" ] in
      Alcotest.(check bool) "same labels share a child" true (a == a');
      M.Counter.incr a;
      M.Counter.incr a;
      M.Counter.incr b;
      Alcotest.(check (option (float 1e-9))) "read child" (Some 2.0)
        (R.value reg ~labels:[ ("op", "read") ] "ops_total");
      Alcotest.(check (option (float 1e-9))) "write child" (Some 1.0)
        (R.value reg ~labels:[ ("op", "write") ] "ops_total");
      Alcotest.check_raises "arity mismatch"
        (Invalid_argument "Obs.Metric.Family.labels: label arity mismatch") (fun () ->
          ignore (M.Family.labels fam [ "a"; "b" ])))

let test_registry_rejects_conflicts () =
  let reg = R.create () in
  let _ = M.Counter.create ~registry:reg ~help:"h" "dup" in
  Alcotest.check_raises "duplicate name+labels"
    (Invalid_argument "Obs.Registry.register: duplicate metric dup (same label set)")
    (fun () -> ignore (M.Counter.create ~registry:reg ~help:"h" "dup"));
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Obs.Registry.register: dup already registered as a counter")
    (fun () -> ignore (M.Gauge.create ~registry:reg ~help:"h" ~labels:[ ("l", "v") ] "dup"));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Obs.Registry.register: invalid metric name \"9bad\"") (fun () ->
      ignore (M.Counter.create ~registry:reg ~help:"h" "9bad"))

let test_registry_reset () =
  with_obs (fun () ->
      let reg = R.create () in
      let c = M.Counter.create ~registry:reg ~help:"h" "c_total" in
      let h = M.Histogram.create ~registry:reg ~help:"h" "h_seconds" in
      M.Counter.incr c;
      M.Histogram.observe h 1.0;
      R.reset reg;
      Alcotest.(check (option (float 1e-9))) "counter zeroed" (Some 0.0) (R.value reg "c_total");
      Alcotest.(check int) "histogram emptied" 0 (M.Histogram.count h))

(* ------------------------ histogram vs. oracle ------------------------ *)

(* The log-linear buckets have relative width 1/32 per octave, so the
   midpoint estimate is within ~1.6% of any value in the bucket; 5% leaves
   headroom. The oracle is rank selection on the sorted observations, with
   the same rank convention as the implementation. *)
let prop_histogram_quantiles =
  QCheck.Test.make ~name:"histogram quantiles track a sorted-array oracle" ~count:200
    QCheck.(pair (int_range 1 300) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Eutil.Prng.create seed in
      with_obs (fun () ->
          let reg = R.create () in
          let h = M.Histogram.create ~registry:reg ~help:"h" "q_seconds" in
          let values =
            Array.init n (fun _ -> Float.exp (Eutil.Prng.range rng (-10.0) 10.0))
          in
          Array.iter (M.Histogram.observe h) values;
          let sorted = Array.copy values in
          Array.sort Float.compare sorted;
          List.for_all
            (fun q ->
              let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
              let oracle = sorted.(rank - 1) in
              let est = M.Histogram.quantile h q in
              abs_float (est -. oracle) <= 0.05 *. oracle)
            [ 0.0; 0.5; 0.9; 0.99; 1.0 ]))

let test_histogram_edge_values () =
  with_obs (fun () ->
      let reg = R.create () in
      let h = M.Histogram.create ~registry:reg ~help:"h" "edge_seconds" in
      M.Histogram.observe h 0.0;
      M.Histogram.observe h (-2.0);
      M.Histogram.observe h infinity;
      M.Histogram.observe h 1.0;
      Alcotest.(check int) "all four counted" 4 (M.Histogram.count h);
      (* Ranks 1-2 live in the <= 0 bin, rank 4 in the +Inf overflow. *)
      Alcotest.(check (float 1e-9)) "low quantile is the negative min" (-2.0)
        (M.Histogram.quantile h 0.25);
      Alcotest.(check (float 0.05)) "rank-3 quantile near 1.0" 1.0
        (M.Histogram.quantile h 0.75);
      Alcotest.(check bool) "top quantile is the +Inf observation" true
        (M.Histogram.quantile h 1.0 = infinity);
      Alcotest.check_raises "NaN rejected"
        (Invalid_argument "Obs.Metric.Histogram.observe: NaN") (fun () ->
          M.Histogram.observe h Float.nan))

(* ------------------------------ exporters ----------------------------- *)

let golden_registry () =
  let reg = R.create () in
  let c = M.Counter.create ~registry:reg ~help:"Total requests" "requests_total" in
  let g =
    M.Gauge.create ~registry:reg ~help:"Lab temperature"
      ~labels:[ ("site", "lab \"A\"") ]
      "temp_celsius"
  in
  with_obs (fun () ->
      M.Counter.add_int c 3;
      M.Gauge.set g 21.5);
  reg

let test_export_text_golden () =
  let reg = golden_registry () in
  Alcotest.(check string) "text export"
    ("counter   requests_total                                   3\n"
   ^ "gauge     temp_celsius{site=\"lab \\\"A\\\"\"}                   21.5\n")
    (Obs.Export.to_text (R.snapshot reg))

let test_export_json_golden () =
  let reg = golden_registry () in
  let json = Obs.Export.to_json (R.snapshot reg) in
  Alcotest.(check string) "json export"
    ("{\"metrics\":[\n"
   ^ "{\"name\":\"requests_total\",\"kind\":\"counter\",\"help\":\"Total requests\",\"labels\":{},\"value\":3},\n"
   ^ "{\"name\":\"temp_celsius\",\"kind\":\"gauge\",\"help\":\"Lab temperature\",\"labels\":{\"site\":\"lab \\\"A\\\"\"},\"value\":21.5}\n"
   ^ "]}\n")
    json;
  Alcotest.(check (result unit string)) "validates" (Ok ()) (Obs.Export.validate_json json)

let test_export_prometheus_golden () =
  let reg = golden_registry () in
  Alcotest.(check string) "prometheus export"
    ("# HELP requests_total Total requests\n" ^ "# TYPE requests_total counter\n"
   ^ "requests_total 3\n" ^ "# HELP temp_celsius Lab temperature\n"
   ^ "# TYPE temp_celsius gauge\n" ^ "temp_celsius{site=\"lab \\\"A\\\"\"} 21.5\n")
    (Obs.Export.to_prometheus (R.snapshot reg))

(* Registration order must not leak into export bytes: the exporters sort
   samples by (name, labels), so two registries holding the same instruments
   registered in opposite orders render identically. *)
let test_export_order_independence () =
  let make order =
    let reg = R.create () in
    let counter () = M.Counter.create ~registry:reg ~help:"Total requests" "requests_total" in
    let gauge label =
      M.Gauge.create ~registry:reg ~help:"Lab temperature" ~labels:[ ("site", label) ]
        "temp_celsius"
    in
    let fill c ga gb =
      with_obs (fun () ->
          M.Counter.add_int c 3;
          M.Gauge.set ga 21.5;
          M.Gauge.set gb 19.0)
    in
    (match order with
    | `Forward ->
        let c = counter () in
        let ga = gauge "a" in
        let gb = gauge "b" in
        fill c ga gb
    | `Reverse ->
        let gb = gauge "b" in
        let ga = gauge "a" in
        let c = counter () in
        fill c ga gb);
    R.snapshot reg
  in
  let fwd = make `Forward and rev = make `Reverse in
  Alcotest.(check string) "text order-independent" (Obs.Export.to_text fwd)
    (Obs.Export.to_text rev);
  Alcotest.(check string) "json order-independent" (Obs.Export.to_json fwd)
    (Obs.Export.to_json rev);
  Alcotest.(check string) "prometheus order-independent" (Obs.Export.to_prometheus fwd)
    (Obs.Export.to_prometheus rev)

let test_export_histogram_structure () =
  with_obs (fun () ->
      let reg = R.create () in
      let h = M.Histogram.create ~registry:reg ~help:"Latency" "latency_seconds" in
      List.iter (M.Histogram.observe h) [ 0.001; 0.002; 0.004 ];
      let samples = R.snapshot reg in
      let json = Obs.Export.to_json samples in
      Alcotest.(check (result unit string)) "json validates" (Ok ())
        (Obs.Export.validate_json json);
      let prom = Obs.Export.to_prometheus samples in
      let has needle =
        Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle prom)
      in
      has "latency_seconds_bucket{le=";
      has "latency_seconds_bucket{le=\"+Inf\"} 3";
      has "latency_seconds_count 3";
      has "latency_seconds_sum 0.007")

let test_validate_json_rejects () =
  let bad input =
    match Obs.Export.validate_json input with
    | Ok () -> Alcotest.failf "accepted invalid JSON: %s" input
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "\"unterminated";
  bad "01";
  bad "1.2.3";
  bad "{\"a\":1} trailing";
  bad "nul";
  List.iter
    (fun good ->
      Alcotest.(check (result unit string)) ("accepts " ^ good) (Ok ())
        (Obs.Export.validate_json good))
    [ "{}"; "[]"; "null"; "-1.5e-3"; "{\"a\":[1,2,{\"b\":\"\\u00e9\"}]}"; "  true  " ]

(* -------------------------------- spans ------------------------------- *)

let test_span_tree_with_injected_clock () =
  with_obs (fun () ->
      let t = ref 100.0 in
      Obs.Clock.set_source (fun () -> !t);
      Obs.Span.clear ();
      let (), dur =
        Obs.Span.timed "outer" (fun () ->
            t := !t +. 1.0;
            Obs.Span.with_ "inner" (fun () -> t := !t +. 0.5))
      in
      Alcotest.(check (float 1e-9)) "outer duration" 1.5 dur;
      match Obs.Span.roots () with
      | [ root ] -> (
          Alcotest.(check string) "root name" "outer" root.Obs.Span.name;
          Alcotest.(check (float 1e-9)) "root duration" 1.5 root.Obs.Span.dur_s;
          match root.Obs.Span.children with
          | [ child ] ->
              Alcotest.(check string) "child name" "inner" child.Obs.Span.name;
              Alcotest.(check (float 1e-9)) "child duration" 0.5 child.Obs.Span.dur_s
          | l -> Alcotest.failf "expected one child, got %d" (List.length l))
      | l -> Alcotest.failf "expected one root, got %d" (List.length l))

let test_span_disabled_still_times () =
  Obs.set_enabled false;
  Obs.Span.clear ();
  let t = ref 0.0 in
  Obs.Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Obs.Clock.reset_source (fun () ->
      let (), dur = Obs.Span.timed "quiet" (fun () -> t := !t +. 2.0) in
      Alcotest.(check (float 1e-9)) "duration measured" 2.0 dur;
      Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Span.roots ())))

let test_clock_is_monotonic () =
  let t = ref 10.0 in
  Obs.Clock.set_source (fun () -> !t);
  Fun.protect ~finally:Obs.Clock.reset_source (fun () ->
      let a = Obs.Clock.now_s () in
      t := 5.0;
      (* a wall-clock step backwards *)
      let b = Obs.Clock.now_s () in
      Alcotest.(check bool) "never goes backwards" true (b >= a))

let () =
  Alcotest.run "obs"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "gauge" `Quick test_gauge_semantics;
          Alcotest.test_case "family" `Quick test_family_semantics;
          Alcotest.test_case "registry conflicts" `Quick test_registry_rejects_conflicts;
          Alcotest.test_case "registry reset" `Quick test_registry_reset;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_histogram_quantiles;
          Alcotest.test_case "edge values" `Quick test_histogram_edge_values;
        ] );
      ( "export",
        [
          Alcotest.test_case "text golden" `Quick test_export_text_golden;
          Alcotest.test_case "json golden" `Quick test_export_json_golden;
          Alcotest.test_case "prometheus golden" `Quick test_export_prometheus_golden;
          Alcotest.test_case "order independence" `Quick test_export_order_independence;
          Alcotest.test_case "histogram structure" `Quick test_export_histogram_structure;
          Alcotest.test_case "validate_json" `Quick test_validate_json_rejects;
        ] );
      ( "span",
        [
          Alcotest.test_case "nested tree" `Quick test_span_tree_with_injected_clock;
          Alcotest.test_case "disabled still times" `Quick test_span_disabled_still_times;
          Alcotest.test_case "monotonic clock" `Quick test_clock_is_monotonic;
        ] );
    ]
