(* Tests for the utility substrate: PRNG, heap, statistics, typed units. *)

module Prng = Eutil.Prng
module Heap = Eutil.Heap
module Stats = Eutil.Stats
module U = Eutil.Units
module Memo = Eutil.Memo

(* ------------------------------- units ------------------------------- *)

(* Negative-compilation proof that the phantom dimensions are real: each of
   the lines below is rejected by the type checker with a dimension
   mismatch. Uncomment any one of them to watch the build fail.

     let _bad_sum = U.( +: ) (U.watts 1.0) (U.bps 1.0)
     let _bad_ratio : U.ratio U.q = U.( /: ) (U.watts 1.0) (U.seconds 1.0)
     let _bad_scale = U.( *: ) (U.watts 1.0) (U.watts 1.0)
     let _bad_energy = U.( *@ ) (U.bps 1.0) (U.seconds 1.0)
     let _bad_mixup : U.watts U.q = U.bps 600.0
     let _no_plain_add = U.watts 1.0 +. U.watts 1.0
*)

let magnitude = Alcotest.testable Fmt.float (fun a b -> abs_float (a -. b) <= 1e-9)

let test_units_constructors_reject_nan () =
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name
        (Invalid_argument ("Units." ^ name ^ ": NaN is not a quantity"))
        (fun () -> ignore (f Float.nan)))
    [
      ("watts", fun x -> U.to_float (U.watts x));
      ("bps", fun x -> U.to_float (U.bps x));
      ("ratio", fun x -> U.to_float (U.ratio x));
      ("seconds", fun x -> U.to_float (U.seconds x));
      ("joules", fun x -> U.to_float (U.joules x));
    ];
  (* Infinity is a legal magnitude (breakeven gaps use it). *)
  Alcotest.(check bool) "infinity allowed" true (U.to_float (U.seconds infinity) = infinity);
  (* [unsafe] is the explicit forgery hatch: it must not check. *)
  Alcotest.(check bool) "unsafe NaN" true (Float.is_nan (U.to_float (U.unsafe Float.nan)))

let test_units_prefixes () =
  Alcotest.check magnitude "kbps" 1.0e3 (U.to_float (U.kbps 1.0));
  Alcotest.check magnitude "mbps" 2.0e6 (U.to_float (U.mbps 2.0));
  Alcotest.check magnitude "gbps" 2.5e9 (U.to_float (U.gbps 2.5))

let test_units_additive () =
  Alcotest.check magnitude "+:" 740.0 (U.to_float U.(watts 600.0 +: watts 140.0));
  Alcotest.check magnitude "-:" 460.0 (U.to_float U.(watts 600.0 -: watts 140.0));
  Alcotest.check magnitude "zero is neutral" 42.0 (U.to_float U.(bps 42.0 +: zero))

let test_units_ratio_algebra () =
  Alcotest.check magnitude "*:" 45.0 (U.to_float U.(ratio 0.9 *: watts 50.0));
  Alcotest.check magnitude "/:" 0.5 (U.to_float U.(bps 5e8 /: bps 1e9));
  Alcotest.check magnitude "percent" 50.0 (U.percent U.(bps 5e8 /: bps 1e9));
  Alcotest.check_raises "zero divisor raises"
    (Invalid_argument "Units./: : zero divisor would mint a NaN/inf ratio")
    (fun () -> ignore U.(watts 1.0 /: watts 0.0));
  (match U.div_opt (U.watts 1.0) (U.watts 0.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "div_opt must refuse a zero divisor");
  (match U.div_opt (U.watts 1.0) (U.watts 4.0) with
  | Some r -> Alcotest.check magnitude "div_opt value" 0.25 (U.to_float r)
  | None -> Alcotest.fail "div_opt lost a live quotient")

let test_units_energy_and_scale () =
  Alcotest.check magnitude "*@ watts x seconds" 1200.0
    (U.to_float U.(watts 600.0 *@ seconds 2.0));
  Alcotest.check magnitude "scale" 120.0 (U.to_float (U.scale 1.2 (U.watts 100.0)));
  Alcotest.check_raises "scale cannot mint NaN"
    (Invalid_argument "Units.scale: NaN is not a quantity")
    (fun () -> ignore (U.scale Float.nan (U.watts 1.0)))

let test_units_comparisons () =
  Alcotest.(check int) "compare_q" (-1) (U.compare_q (U.bps 1.0) (U.bps 2.0));
  Alcotest.check magnitude "min_q" 1.0 (U.to_float (U.min_q (U.bps 1.0) (U.bps 2.0)));
  Alcotest.check magnitude "max_q" 2.0 (U.to_float (U.max_q (U.bps 1.0) (U.bps 2.0)));
  Alcotest.(check bool) "is_zero zero" true (U.is_zero U.zero);
  Alcotest.(check bool) "is_zero nonzero" false (U.is_zero (U.bps 1.0))

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Prng.float a) (Prng.float b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 16 (fun _ -> Prng.float a) in
  let ys = List.init 16 (fun _ -> Prng.float b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_prng_float_range () =
  let r = Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Prng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_range () =
  let r = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_prng_gaussian_moments () =
  let r = Prng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian r) in
  Alcotest.(check bool) "mean ~ 0" true (abs_float (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "stdev ~ 1" true (abs_float (Stats.stdev xs -. 1.0) < 0.05)

let test_prng_sample_distinct () =
  let r = Prng.create 3 in
  let s = Prng.sample r 10 20 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list (float 0.0))) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "first";
  Heap.push h 1.0 "second";
  Heap.push h 1.0 "third";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "fifo on ties" [ "first"; "second"; "third" ] order

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (p, ()) -> p >= prev && drain p
      in
      drain neg_infinity)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.percentile xs 100.0)

let test_boxplot () =
  let b = Stats.boxplot (Array.init 101 (fun i -> float_of_int i)) in
  Alcotest.(check (float 1e-9)) "median" 50.0 b.Stats.median;
  Alcotest.(check (float 1e-9)) "q1" 25.0 b.Stats.q1;
  Alcotest.(check (float 1e-9)) "q3" 75.0 b.Stats.q3

let test_ccdf () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  match Stats.ccdf xs [ 25.0 ] with
  | [ (25.0, pct) ] -> Alcotest.(check (float 1e-9)) "half above" 50.0 pct
  | _ -> Alcotest.fail "shape"

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Stats.percentile a p in
      let lo = Array.fold_left min infinity a and hi = Array.fold_left max neg_infinity a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------- pool -------------------------------- *)

module Pool = Eutil.Pool

let test_pool_map_order () =
  (* Results land at the input index whichever domain computes them. *)
  let a = Array.init 100 Fun.id in
  Alcotest.(check (array int)) "jobs 1"
    (Array.map (fun x -> x * x) a)
    (Pool.map_array ~jobs:1 (fun x -> x * x) a);
  Alcotest.(check (array int)) "jobs 4"
    (Array.map (fun x -> x * x) a)
    (Pool.map_array ~jobs:4 (fun x -> x * x) a);
  Alcotest.(check (array int)) "more jobs than items"
    [| 0; 2; 4 |]
    (Pool.map_array ~jobs:16 (fun x -> 2 * x) (Array.init 3 Fun.id))

let test_pool_init () =
  Alcotest.(check (array int)) "init matches Array.init"
    (Array.init 37 (fun i -> 3 * i))
    (Pool.init ~jobs:4 37 (fun i -> 3 * i));
  Alcotest.(check (array int)) "empty" [||] (Pool.init ~jobs:4 0 (fun i -> i))

let test_pool_exceptions () =
  (* The first worker exception is re-raised with its identity intact. *)
  Alcotest.check_raises "invalid_arg propagates" (Invalid_argument "boom") (fun () ->
      ignore (Pool.init ~jobs:4 16 (fun i -> if i = 11 then invalid_arg "boom" else i)));
  Alcotest.check_raises "sequential path too" (Invalid_argument "boom") (fun () ->
      ignore (Pool.init ~jobs:1 16 (fun i -> if i = 11 then invalid_arg "boom" else i)))

let test_pool_default_jobs () =
  Alcotest.(check bool) "at least one domain" true (Pool.default_jobs () >= 1)

let prop_pool_matches_sequential =
  QCheck.Test.make ~name:"pool map matches sequential map for any jobs" ~count:50
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      let a = Array.of_list xs in
      Pool.map_array ~jobs (fun x -> x + 1) a = Array.map (fun x -> x + 1) a)

(* ------------------------------- memo ------------------------------- *)

let test_memo_hit_miss_counters () =
  let calls = ref 0 in
  let t = Memo.create ~capacity:4 () in
  let f k =
    incr calls;
    k * 10
  in
  Alcotest.(check int) "first call computes" 30 (Memo.find_or_add t 3 ~compute:f);
  Alcotest.(check int) "second call cached" 30 (Memo.find_or_add t 3 ~compute:f);
  Alcotest.(check int) "computed once" 1 !calls;
  let s = Memo.stats t in
  Alcotest.(check int) "one hit" 1 s.Memo.hits;
  Alcotest.(check int) "one miss" 1 s.Memo.misses;
  Alcotest.(check int) "no evictions" 0 s.Memo.evictions

let test_memo_lru_eviction () =
  let t = Memo.create ~capacity:2 () in
  let f k = k in
  ignore (Memo.find_or_add t 1 ~compute:f);
  ignore (Memo.find_or_add t 2 ~compute:f);
  (* Touch 1 so 2 is the least recently used entry. *)
  ignore (Memo.find_or_add t 1 ~compute:f);
  ignore (Memo.find_or_add t 3 ~compute:f);
  Alcotest.(check bool) "1 survives (recently used)" true (Memo.mem t 1);
  Alcotest.(check bool) "2 evicted (LRU)" false (Memo.mem t 2);
  Alcotest.(check bool) "3 present" true (Memo.mem t 3);
  Alcotest.(check int) "one eviction counted" 1 (Memo.stats t).Memo.evictions;
  Alcotest.(check int) "length at capacity" 2 (Memo.length t)

let test_memo_clear_and_errors () =
  let t = Memo.create ~capacity:2 () in
  ignore (Memo.find_or_add t 1 ~compute:(fun k -> k));
  Memo.clear t;
  Alcotest.(check int) "empty after clear" 0 (Memo.length t);
  Alcotest.(check int) "counters survive clear" 1 (Memo.stats t).Memo.misses;
  Alcotest.check_raises "capacity 0 rejected" (Invalid_argument "Memo.create: capacity >= 1")
    (fun () -> ignore (Memo.create ~capacity:0 ()));
  (* A raising computation is never cached: the next lookup recomputes. *)
  let boom = ref true in
  let f k =
    if !boom then failwith "boom";
    k
  in
  (try ignore (Memo.find_or_add t 9 ~compute:f) with Failure _ -> ());
  boom := false;
  Alcotest.(check int) "recomputed after raise" 9 (Memo.find_or_add t 9 ~compute:f)

let prop_memo_bounded_and_transparent =
  QCheck.Test.make ~name:"memo stays bounded and value-transparent" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (cap, keys) ->
      let t = Memo.create ~capacity:cap () in
      let g = Memo.wrap t (fun k -> (2 * k) + 1) in
      List.for_all (fun k -> g k = (2 * k) + 1 && g k = (2 * k) + 1) keys
      && Memo.length t <= cap)

let () =
  Alcotest.run "util"
    [
      ( "units",
        [
          Alcotest.test_case "constructors reject NaN" `Quick test_units_constructors_reject_nan;
          Alcotest.test_case "prefixes" `Quick test_units_prefixes;
          Alcotest.test_case "additive algebra" `Quick test_units_additive;
          Alcotest.test_case "ratio algebra" `Quick test_units_ratio_algebra;
          Alcotest.test_case "energy and scale" `Quick test_units_energy_and_scale;
          Alcotest.test_case "comparisons" `Quick test_units_comparisons;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "boxplot" `Quick test_boxplot;
          Alcotest.test_case "ccdf" `Quick test_ccdf;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "init" `Quick test_pool_init;
          Alcotest.test_case "exceptions" `Quick test_pool_exceptions;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          QCheck_alcotest.to_alcotest prop_pool_matches_sequential;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_memo_hit_miss_counters;
          Alcotest.test_case "LRU eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "clear and errors" `Quick test_memo_clear_and_errors;
          QCheck_alcotest.to_alcotest prop_memo_bounded_and_transparent;
        ] );
    ]
